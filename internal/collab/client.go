package collab

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Dialer produces connections to a server; *memnet.Listener and
// *faultnet.Listener both satisfy it, so the same client runs hermetic
// and under chaos.
type Dialer interface {
	Dial() (net.Conn, error)
}

// Backoff is a capped exponential reconnect/retry policy.
type Backoff struct {
	// Base is the first delay (default 1ms); each retry doubles it up to
	// Cap (default 100ms).
	Base time.Duration
	Cap  time.Duration
	// MaxAttempts bounds dial/retry attempts per operation (default 12).
	MaxAttempts int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 100 * time.Millisecond
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 12
	}
	return b
}

// delay returns the capped exponential delay for the given 0-based
// attempt.
func (b Backoff) delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	return d
}

// ClientOptions tunes the resilient client.
type ClientOptions struct {
	// RequestTimeout bounds each attempt of a round trip (write + read).
	// An expired attempt drops the connection and retries through
	// reconnect+RESUME. Zero means 10s.
	RequestTimeout time.Duration
	// Backoff paces reconnects and BUSY retries.
	Backoff Backoff
	// NoAutoResume disables transparent reconnection: transport errors
	// surface to the caller, who drives Reconnect/NewSession explicitly
	// (the schedule explorer's mode).
	NoAutoResume bool
	// MaxBatch caps ops per batch frame sent by Flush. It must not
	// exceed the server's replay window or a reconnect mid-frame can
	// lose replay coverage. Zero means 8 (the default window).
	MaxBatch int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultWindow
	}
	o.Backoff = o.Backoff.withDefaults()
	return o
}

// Client is a resilient session client for the collaborative servers: it
// holds a server-issued session id, numbers every request with a monotone
// sequence number, applies a per-request deadline, and — unless
// NoAutoResume is set — survives transport failure by reconnecting with
// capped exponential backoff and RESUME-ing its session, re-sending the
// in-flight request so the server's replay window deduplicates it.
type Client struct {
	d    Dialer
	opts ClientOptions

	mu       sync.Mutex
	conn     net.Conn
	r        *lineReader
	sid      string
	nextSeq  uint64
	acked    uint64 // highest reply seq received
	inflight string // full request line awaiting a reply ("" when idle)
	queue    []queuedOp
	closed   bool
	counters *stats.Counters
}

// Dial connects a new session client with default options.
func Dial(d Dialer) (*Client, error) {
	return DialWith(d, ClientOptions{})
}

// DialWith connects a new session client, retrying BUSY admission sheds
// within the backoff budget.
func DialWith(d Dialer, opts ClientOptions) (*Client, error) {
	c := &Client{d: d, opts: opts.withDefaults(), counters: stats.NewCounters()}
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		err := c.helloLocked()
		if err == nil {
			return c, nil
		}
		if attempt+1 >= c.opts.Backoff.MaxAttempts || errors.Is(err, ErrSessionExpired) {
			return nil, err
		}
		c.sleep(err, attempt)
	}
}

// sleep pauses for the backoff delay, stretched to the server's
// advertised retry-after hint when the error carries one.
func (c *Client) sleep(err error, attempt int) {
	d := c.opts.Backoff.delay(attempt)
	var over *OverloadedError
	if errors.As(err, &over) && over.RetryAfter > d {
		d = over.RetryAfter
	}
	time.Sleep(d)
}

// helloLocked dials and opens a fresh session.
func (c *Client) helloLocked() error {
	conn, r, line, err := c.handshakeLocked("HELLO")
	if err != nil {
		return err
	}
	fields := strings.Fields(line)
	switch {
	case len(fields) == 2 && fields[0] == "OK":
		c.conn, c.r = conn, r
		c.sid = fields[1]
		c.nextSeq, c.acked, c.inflight = 1, 0, ""
		c.counters.Inc("sessions")
		return nil
	case len(fields) == 2 && fields[0] == "BUSY":
		conn.Close()
		c.counters.Inc("shed")
		return &OverloadedError{Reason: "sessions", RetryAfter: retryHint(fields[1])}
	default:
		conn.Close()
		return &ProtocolError{Detail: fmt.Sprintf("bad HELLO reply %q", line)}
	}
}

// resumeLocked dials and re-attaches the existing session.
func (c *Client) resumeLocked() error {
	if c.sid == "" {
		return c.helloLocked()
	}
	conn, r, line, err := c.handshakeLocked(fmt.Sprintf("RESUME %s %d", c.sid, c.acked))
	if err != nil {
		return err
	}
	fields := strings.Fields(line)
	switch {
	case len(fields) == 3 && fields[0] == "OK" && fields[1] == c.sid:
		c.conn, c.r = conn, r
		c.counters.Inc("resumes")
		return nil
	case len(fields) >= 2 && fields[0] == "BUSY":
		conn.Close()
		return &OverloadedError{Reason: "sessions", RetryAfter: retryHint(fields[1])}
	case len(fields) >= 2 && fields[0] == "ERR" && fields[1] == "SESSION-EXPIRED":
		conn.Close()
		c.counters.Inc("expired")
		return &SessionExpiredError{ID: c.sid}
	default:
		conn.Close()
		return &ProtocolError{Detail: fmt.Sprintf("bad RESUME reply %q", line)}
	}
}

// handshakeLocked dials and performs one deadline-guarded handshake round
// trip, returning the connection together with the reader that served it
// (the two must be adopted — or discarded — as a pair).
func (c *Client) handshakeLocked(req string) (net.Conn, *lineReader, string, error) {
	if c.closed {
		return nil, nil, "", ErrClientClosed
	}
	c.dropLocked()
	conn, err := c.d.Dial()
	if err != nil {
		return nil, nil, "", fmt.Errorf("collab: dial: %w", err)
	}
	r := newLineReader(conn)
	conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	if _, err := io.WriteString(conn, req+"\n"); err != nil {
		conn.Close()
		return nil, nil, "", fmt.Errorf("collab: handshake write: %w", err)
	}
	line, err := r.ReadLine()
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, nil, "", fmt.Errorf("collab: handshake read: %w", err)
	}
	return conn, r, line, nil
}

// serverError is a terminal server-side failure (ERR INTERNAL): the
// request did not resolve and retrying cannot help, because the server's
// own merge machinery failed.
type serverError struct{ detail string }

func (e *serverError) Error() string { return "collab: server: " + e.detail }

func retryHint(ms string) time.Duration {
	n, err := strconv.Atoi(ms)
	if err != nil || n < 1 {
		n = 1
	}
	return time.Duration(n) * time.Millisecond
}

// dropLocked discards the connection and its reader together.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r = nil, nil
	}
}

// roundtrip sends one numbered request and resolves its reply, driving
// reconnect+RESUME, BUSY backoff and replay dedup.
func (c *Client) roundtrip(format string, args ...any) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClientClosed
	}
	// Flush-on-sync: queued batch ops ship before any direct request so
	// the server applies everything in the order the caller issued it.
	if len(c.queue) > 0 {
		if err := c.flushLocked(); err != nil {
			return "", err
		}
	}
	seq := c.nextSeq
	line := fmt.Sprintf("%d %s", seq, fmt.Sprintf(format, args...))
	c.inflight = line
	return c.finishLocked(seq)
}

// finishLocked drives the in-flight request to a reply (or error),
// re-sending the same sequence number across reconnects so the server's
// replay window deduplicates retries.
func (c *Client) finishLocked(seq uint64) (string, error) {
	line := c.inflight
	for attempt := 0; ; attempt++ {
		if attempt >= c.opts.Backoff.MaxAttempts {
			return "", &OverloadedError{Reason: "retries exhausted", RetryAfter: c.opts.Backoff.Cap}
		}
		if c.conn == nil {
			if c.opts.NoAutoResume {
				return "", fmt.Errorf("collab: not connected (auto-resume disabled): %w", net.ErrClosed)
			}
			if err := c.resumeLocked(); err != nil {
				if errors.Is(err, ErrSessionExpired) || errors.Is(err, ErrClientClosed) {
					return "", err
				}
				c.counters.Inc("reconnect_retry")
				c.sleep(err, attempt)
				continue
			}
		}
		payload, err := c.attemptLocked(seq, line)
		if err == nil {
			c.inflight = ""
			return payload, nil
		}
		var busy *OverloadedError
		switch {
		case errors.As(err, &busy) && busy.Reason == "request":
			// Shed, not acked: retry the same seq after the hint.
			c.counters.Inc("busy")
			c.sleep(err, attempt)
		case errors.Is(err, ErrProtocol), errors.Is(err, ErrReadOnly), errors.Is(err, ErrSessionExpired),
			errors.As(err, new(*serverError)):
			// The request is resolved (acked error, dead session, or a
			// server-side merge failure); retrying cannot help.
			c.inflight = ""
			return "", err
		default:
			// Transport failure: drop the connection (and its reader) and
			// go around through reconnect+RESUME.
			c.counters.Inc("transport_errors")
			c.dropLocked()
			if c.opts.NoAutoResume {
				return "", err
			}
			c.sleep(err, attempt)
		}
	}
}

// attemptLocked performs one deadline-guarded send+receive of the
// in-flight line and classifies the reply.
func (c *Client) attemptLocked(seq uint64, line string) (string, error) {
	c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	defer func() {
		if c.conn != nil {
			c.conn.SetDeadline(time.Time{})
		}
	}()
	if _, err := io.WriteString(c.conn, line+"\n"); err != nil {
		return "", fmt.Errorf("collab: write: %w", err)
	}
	for {
		reply, err := c.r.ReadLine()
		if err != nil {
			return "", fmt.Errorf("collab: read: %w", err)
		}
		status, rest, _ := strings.Cut(strings.TrimSpace(reply), " ")
		seqStr, detail, _ := strings.Cut(rest, " ")
		rseq, perr := strconv.ParseUint(seqStr, 10, 64)
		if perr != nil {
			return "", &ProtocolError{Detail: fmt.Sprintf("unnumbered reply %q", reply)}
		}
		if rseq < seq {
			continue // stale reply from a previous attempt's replay
		}
		if rseq > seq {
			return "", &ProtocolError{Detail: fmt.Sprintf("reply for future seq %d (sent %d)", rseq, seq)}
		}
		switch status {
		case "OK":
			c.acked = seq
			c.nextSeq = seq + 1
			doc, uerr := strconv.Unquote(strings.TrimSpace(detail))
			if uerr != nil {
				// LIST/USE payloads are quoted too; a bare payload is a
				// server bug.
				return "", &ProtocolError{Detail: fmt.Sprintf("bad payload in %q", reply)}
			}
			return doc, nil
		case "ERR":
			cat, why, _ := strings.Cut(detail, " ")
			c.acked = seq
			c.nextSeq = seq + 1
			switch cat {
			case "READONLY":
				return "", &ReadOnlyError{Reason: why}
			case "PROTOCOL":
				return "", &ProtocolError{Detail: why}
			default:
				return "", &serverError{detail: cat + " " + why}
			}
		case "BUSY":
			return "", &OverloadedError{Reason: "request", RetryAfter: retryHint(detail)}
		case "GONE":
			c.counters.Inc("gone")
			return "", &SessionExpiredError{ID: c.sid}
		default:
			return "", &ProtocolError{Detail: fmt.Sprintf("bad reply %q", reply)}
		}
	}
}

// Insert inserts text at pos and returns the post-merge document.
func (c *Client) Insert(pos int, text string) (string, error) {
	return c.roundtrip("INS %d %s", pos, strconv.Quote(text))
}

// Delete removes n runes at pos and returns the post-merge document.
func (c *Client) Delete(pos, n int) (string, error) {
	return c.roundtrip("DEL %d %d", pos, n)
}

// Get fetches the current document (possibly one exchange stale when the
// server is shedding merge load).
func (c *Client) Get() (string, error) {
	return c.roundtrip("GET")
}

// Use selects the named document on a multi-document server and returns
// its content. The selection is session state: it survives reconnects.
func (c *Client) Use(name string) (string, error) {
	return c.roundtrip("USE %s", name)
}

// List returns the comma-joined document names hosted by a MultiServer.
func (c *Client) List() (string, error) {
	return c.roundtrip("LIST")
}

// Bye ends the session gracefully and closes the connection. A session
// already gone counts as closed.
func (c *Client) Bye() error {
	_, err := c.roundtrip("BYE")
	if errors.Is(err, ErrSessionExpired) {
		err = nil
	}
	c.Close()
	return err
}

// BeginInsert sends an INS without waiting for the reply, leaving the
// request in flight — the test hook for exercising the dropped-ack path.
// Drive it to completion with Finish (after Drop/Reconnect as desired).
func (c *Client) BeginInsert(pos int, text string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if c.conn == nil {
		return fmt.Errorf("collab: not connected: %w", net.ErrClosed)
	}
	seq := c.nextSeq
	line := fmt.Sprintf("%d INS %d %s", seq, pos, strconv.Quote(text))
	c.inflight = line
	c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	_, err := io.WriteString(c.conn, line+"\n")
	c.conn.SetDeadline(time.Time{})
	return err
}

// Finish re-sends the in-flight request (same sequence number — the
// server replays the recorded reply if it already applied it) and awaits
// the reply.
func (c *Client) Finish() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight == "" {
		return "", &ProtocolError{Detail: "no request in flight"}
	}
	return c.finishLocked(c.nextSeq)
}

// Drop abandons the transport without ending the session — simulating a
// network failure. The session stays resumable on the server.
func (c *Client) Drop() {
	c.mu.Lock()
	c.dropLocked()
	c.mu.Unlock()
}

// Reconnect dials and RESUMEs the session explicitly (for NoAutoResume
// clients); errors.Is(err, ErrSessionExpired) reports an evicted session.
func (c *Client) Reconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumeLocked()
}

// NewSession abandons any current session and opens a fresh one (the
// recovery path after ErrSessionExpired). Sequence numbering restarts.
func (c *Client) NewSession() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight = ""
	return c.helloLocked()
}

// SessionID returns the server-issued session id.
func (c *Client) SessionID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sid
}

// Stats exposes client-side resilience counters ("sessions", "resumes",
// "busy", "transport_errors", "shed", "expired", ...).
func (c *Client) Stats() *stats.Counters { return c.counters }

// Close terminates the connection. It is idempotent and safe to call
// concurrently with in-flight requests (they fail with transport errors
// or ErrClientClosed).
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.dropLocked()
}

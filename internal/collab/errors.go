package collab

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors classify every failure the collaborative front door can
// hand a client, mirroring dist's errors.Is taxonomy: wrap-aware sentinel
// values plus detail-carrying concrete types that Is() onto them.
var (
	// ErrProtocol marks request-level protocol failures: malformed lines,
	// bad positions, unknown documents, sequence gaps. The session stays
	// usable after one.
	ErrProtocol = errors.New("collab: protocol error")

	// ErrOverloaded marks admission-control shedding: the server refused a
	// session (HELLO shed) or a request (rate limit, pending-merge gate)
	// with a BUSY reply and the client's retry budget ran out.
	ErrOverloaded = errors.New("collab: server overloaded")

	// ErrSessionExpired marks a resume attempt on a session the server has
	// evicted (idle timeout), closed (BYE), or never issued — exactly-once
	// delivery can no longer be guaranteed for that session's in-flight
	// request, so the client must open a fresh session and reconcile.
	ErrSessionExpired = errors.New("collab: session expired")

	// ErrReadOnly marks a mutation refused because the server is draining
	// or otherwise degraded to read-only service. Reads still succeed.
	ErrReadOnly = errors.New("collab: server is read-only")

	// ErrClientClosed is returned by client calls after Close.
	ErrClientClosed = errors.New("collab: client closed")
)

// ProtocolError is a request-level protocol failure with the server's
// detail text. errors.Is(err, ErrProtocol) matches it.
type ProtocolError struct{ Detail string }

func (e *ProtocolError) Error() string { return fmt.Sprintf("collab: protocol error: %s", e.Detail) }

// Is reports sentinel identity for errors.Is.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }

// OverloadedError is an admission-control rejection carrying the server's
// advertised retry hint. errors.Is(err, ErrOverloaded) matches it.
type OverloadedError struct {
	// Reason says which gate shed the work ("sessions", "rate", "merges").
	Reason string
	// RetryAfter is the server's advertised backoff hint.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("collab: server overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Is reports sentinel identity for errors.Is.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// SessionExpiredError is a failed resume: the named session is gone.
// errors.Is(err, ErrSessionExpired) matches it.
type SessionExpiredError struct{ ID string }

func (e *SessionExpiredError) Error() string {
	return fmt.Sprintf("collab: session %s expired", e.ID)
}

// Is reports sentinel identity for errors.Is.
func (e *SessionExpiredError) Is(target error) bool { return target == ErrSessionExpired }

// ReadOnlyError is a refused mutation with the server's typed reason
// ("draining", "overload"). errors.Is(err, ErrReadOnly) matches it.
type ReadOnlyError struct{ Reason string }

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("collab: server is read-only (%s)", e.Reason)
}

// Is reports sentinel identity for errors.Is.
func (e *ReadOnlyError) Is(target error) bool { return target == ErrReadOnly }

package collab

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/memnet"
)

// chaosWorkload runs `clients` concurrent editors, each prepending
// `edits` unique `;`-terminated markers, against an already-started
// server reachable through d. Every client failure is fatal: under
// automatic reconnect+resume a chaos run must complete the same workload
// a fault-free run does.
func chaosWorkload(t *testing.T, d Dialer, clients, edits int, opts ClientOptions) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := DialWith(d, opts)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			for j := 0; j < edits; j++ {
				if _, err := c.Insert(0, fmt.Sprintf("c%d-e%d;", id, j)); err != nil {
					errs <- fmt.Errorf("client %d edit %d: %w", id, j, err)
					return
				}
			}
			if err := c.Bye(); err != nil {
				errs <- fmt.Errorf("client %d: bye: %w", id, err)
				return
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// checkExactlyOnce asserts every marker of the workload appears in the
// final document exactly once — no acked edit lost, no retried edit
// duplicated — and that the edit counter matches exactly.
func checkExactlyOnce(t *testing.T, doc string, gotEdits int64, clients, edits int) {
	t.Helper()
	for id := 0; id < clients; id++ {
		for j := 0; j < edits; j++ {
			marker := fmt.Sprintf("c%d-e%d;", id, j)
			if n := strings.Count(doc, marker); n != 1 {
				t.Errorf("marker %q appears %d times, want exactly 1", marker, n)
			}
		}
	}
	if want := int64(clients * edits); gotEdits != want {
		t.Errorf("edits = %d, want exactly %d", gotEdits, want)
	}
}

// TestChaosConvergence runs the workload twice — once fault-free, once
// with seeded drops and resets — and demands the same canonical final
// state: identical marker multiset (order varies legitimately with
// MergeAny's first-completed order), identical edit count, identical
// canonical fingerprint.
func TestChaosConvergence(t *testing.T) {
	const clients, edits = 4, 10

	// Fault-free reference.
	rl := memnet.Listen(64)
	ref := Serve(rl, "")
	chaosWorkload(t, rl, clients, edits, testClientOpts())
	rl.Close()
	if err := ref.Wait(); err != nil {
		t.Fatalf("reference server: %v", err)
	}
	checkExactlyOnce(t, ref.Document(), ref.Edits(), clients, edits)

	// Chaos run: every write may be dropped or reset the connection; the
	// clients' reconnect+resume must still complete the whole workload.
	fnet := faultnet.New(faultnet.Config{Seed: 42, DropProb: 0.05, ResetProb: 0.02})
	fl := fnet.Listen(0, 64)
	s := Serve(fl, "")
	chaosWorkload(t, fl, clients, edits, ClientOptions{
		RequestTimeout: 100 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 200},
	})
	fl.Close()
	if err := s.Wait(); err != nil {
		t.Fatalf("chaos server: %v", err)
	}
	checkExactlyOnce(t, s.Document(), s.Edits(), clients, edits)

	if injected := fnet.Stats().Get("drop") + fnet.Stats().Get("reset"); injected == 0 {
		t.Fatal("no faults were injected; the chaos run proved nothing")
	}
	if got, want := CanonicalFingerprint(s.Document()), CanonicalFingerprint(ref.Document()); got != want {
		t.Errorf("canonical fingerprint %016x != fault-free %016x", got, want)
	}
}

// TestChaosPartitionPulse cuts the server off mid-workload with bounded
// partitions that heal after swallowing writes; resume must carry every
// client through.
func TestChaosPartitionPulse(t *testing.T) {
	const clients, edits = 3, 8
	fnet := faultnet.New(faultnet.Config{Seed: 7})
	fl := fnet.Listen(0, 64)
	s := Serve(fl, "")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			time.Sleep(15 * time.Millisecond)
			fnet.PartitionFor(0, 4) // blackhole the next 4 writes, then heal
		}
	}()
	chaosWorkload(t, fl, clients, edits, ClientOptions{
		RequestTimeout: 50 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 400},
	})
	<-done
	fnet.Heal(0)
	fl.Close()
	if err := s.Wait(); err != nil {
		t.Fatalf("server: %v", err)
	}
	checkExactlyOnce(t, s.Document(), s.Edits(), clients, edits)
}

// TestOverloadShedsWithoutLoss drives more clients than the admission
// gate admits, with a starved token bucket and a merge-backpressure gate:
// the server must shed with BUSY (never silently), and every shed request
// must eventually complete without loss or duplication.
func TestOverloadShedsWithoutLoss(t *testing.T) {
	const clients, edits = 4, 8
	l := memnet.Listen(64)
	s := ServeWith(l, "", Options{
		Admission: Admission{
			MaxSessions: 2,
			MaxPending:  1,
			RateBurst:   2,
			RateEvery:   3,
			RetryAfter:  time.Millisecond,
		},
	})
	chaosWorkload(t, l, clients, edits, ClientOptions{
		RequestTimeout: time.Second,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, MaxAttempts: 2000},
	})
	l.Close()
	if err := s.Wait(); err != nil {
		t.Fatalf("server: %v", err)
	}
	checkExactlyOnce(t, s.Document(), s.Edits(), clients, edits)
	shed := s.Stats().Get("shed") + s.Stats().Get("busy_rate") + s.Stats().Get("busy_merges")
	if shed == 0 {
		t.Fatal("overload run shed nothing; the gates were never exercised")
	}
}

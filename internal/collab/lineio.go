package collab

import (
	"bufio"
	"io"
)

// lineReader is a thin buffered line reader. The client stores it next to
// the connection it wraps and always discards the two together, so a
// half-consumed buffer can never leak onto a fresh transport (the bug the
// old client had: it rebuilt the bufio.Reader per call, losing any bytes
// the previous reader had buffered past its line).
type lineReader struct {
	r *bufio.Reader
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{r: bufio.NewReader(r)}
}

// ReadLine returns the next newline-terminated line without the
// terminator.
func (l *lineReader) ReadLine() (string, error) {
	s, err := l.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return s[:len(s)-1], nil
}

package collab

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Default bounds for the session layer. See Admission for the knobs.
const (
	defaultWindow    = 8
	defaultIdleTicks = 1 << 20
)

// ackedReply is one entry of a session's bounded replay window: the
// verbatim reply line the server acked for a sequence number. A
// reconnecting client that re-sends an already-acked request gets the
// recorded line back without re-applying the edit — the dedup half of
// exactly-once on top of at-least-once retries.
type ackedReply struct {
	seq  uint64
	line string
}

// Session is the server-side identity that outlives any one TCP stream: a
// server-issued id, the monotone sequence number of the last acked
// request, a bounded replay window of acked replies, a token bucket for
// per-session rate limiting, and the logical-clock bookkeeping that
// drives deterministic idle eviction.
//
// Two locks with distinct jobs: proc serializes request *processing*
// across attachments (a resumed connection re-sending an in-flight
// request must observe the old attachment's apply-or-not atomically), mu
// guards field access and is never held across a merge.
type Session struct {
	id string

	// proc serializes the check-seq → apply → sync → record-ack critical
	// section. It is held across Sync, so never acquire it while holding
	// mu or the table lock.
	proc sync.Mutex

	mu       sync.Mutex
	attached net.Conn // current transport, nil while detached
	gone     bool     // evicted or closed; terminal

	lastAcked uint64
	window    []ackedReply

	// docIdx is per-session state for the multi-document server: the USE
	// selection survives reconnects because it lives here, not in the
	// connection task.
	docIdx int

	detached   bool
	detachedAt uint64 // logical tick of the detach

	tokens     int64
	lastRefill uint64
}

// ID returns the server-issued session id.
func (s *Session) ID() string { return s.id }

// getDocIdx returns the session's multi-document USE selection (-1 when
// none).
func (s *Session) getDocIdx() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.docIdx
}

// setDocIdx records the session's multi-document USE selection.
func (s *Session) setDocIdx(idx int) {
	s.mu.Lock()
	s.docIdx = idx
	s.mu.Unlock()
}

// attach binds the session to a transport, stealing it from any previous
// attachment (the old socket is closed so its connection task winds
// down; detach is identity-checked so the loser cannot clobber us).
func (s *Session) attach(c net.Conn) {
	s.mu.Lock()
	old := s.attached
	s.attached = c
	s.detached = false
	s.mu.Unlock()
	if old != nil && old != c {
		old.Close()
	}
}

// current reports whether c is still the session's attachment. A serve
// loop that lost a resume race checks this after acquiring proc: its
// pending requests will be re-sent on the new transport, so processing
// them here would only burn backend work on a dead socket.
func (s *Session) current(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attached == c
}

// detach marks the session detached at the given logical tick — but only
// if conn is still the current attachment (a resume may have stolen it).
// Returns whether this call performed the detach.
func (s *Session) detachConn(c net.Conn, tick uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attached != c {
		return false
	}
	s.attached = nil
	s.detached = true
	s.detachedAt = tick
	return true
}

// ack records seq's reply line in the bounded replay window and advances
// the acked frontier.
func (s *Session) ack(seq uint64, line string, window int) {
	if window <= 0 {
		window = defaultWindow
	}
	s.mu.Lock()
	s.lastAcked = seq
	s.window = append(s.window, ackedReply{seq: seq, line: line})
	if n := len(s.window) - window; n > 0 {
		s.window = append(s.window[:0], s.window[n:]...)
	}
	s.mu.Unlock()
}

// replay looks an already-acked seq up in the window.
func (s *Session) replay(seq uint64) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.window {
		if r.seq == seq {
			return r.line, true
		}
	}
	return "", false
}

// acked returns the acked frontier.
func (s *Session) acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAcked
}

// takeToken draws one request token from the session's bucket, refilled
// by the logical clock (adm.RateEvery ticks per token, capacity
// adm.RateBurst). A zero burst disables rate limiting.
func (s *Session) takeToken(tick uint64, adm Admission) bool {
	if adm.RateBurst <= 0 {
		return true
	}
	every := uint64(adm.RateEvery)
	if every == 0 {
		every = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tick > s.lastRefill {
		refill := int64((tick - s.lastRefill) / every)
		if refill > 0 {
			s.tokens += refill
			if s.tokens > int64(adm.RateBurst) {
				s.tokens = int64(adm.RateBurst)
			}
			s.lastRefill += uint64(refill) * every
		}
	}
	if s.tokens <= 0 {
		return false
	}
	s.tokens--
	return true
}

// sessionTable owns every live session of one server: issuance, resume
// lookup, and eviction. Time is a logical clock — one tick per processed
// session request — so eviction decisions are a pure function of (seed,
// session id, request ordering) and never of wall time: a replayed run
// evicts at the same points.
type sessionTable struct {
	adm      Admission
	seed     int64
	counters *stats.Counters
	tracer   *obs.Tracer

	mu       sync.Mutex
	nextID   int64
	clock    uint64
	sessions map[string]*Session
}

func newSessionTable(adm Admission, seed int64, counters *stats.Counters, tracer *obs.Tracer) *sessionTable {
	return &sessionTable{
		adm:      adm,
		seed:     seed,
		counters: counters,
		tracer:   tracer,
		sessions: make(map[string]*Session),
	}
}

// tick advances the logical clock by one request and sweeps expired
// detached sessions.
func (t *sessionTable) tick() uint64 {
	t.mu.Lock()
	t.clock++
	c := t.clock
	t.sweepLocked()
	t.mu.Unlock()
	return c
}

// idleLimit is the detach-to-eviction budget for a session: the base
// idle-tick allowance plus a seeded per-session jitter, so evictions
// spread deterministically instead of stampeding on one tick.
func (t *sessionTable) idleLimit(id string) uint64 {
	lim := t.adm.IdleTicks
	if lim == 0 {
		lim = defaultIdleTicks
	}
	if t.adm.IdleJitter > 0 {
		h := uint64(t.seed) ^ 0xcbf29ce484222325
		for i := 0; i < len(id); i++ {
			h = (h ^ uint64(id[i])) * 0x100000001b3
		}
		lim += h % t.adm.IdleJitter
	}
	return lim
}

// sweepLocked evicts every detached session whose idle budget is spent.
func (t *sessionTable) sweepLocked() {
	for id, s := range t.sessions {
		s.mu.Lock()
		expired := s.detached && t.clock-s.detachedAt > t.idleLimit(id)
		if expired {
			s.gone = true
		}
		s.mu.Unlock()
		if expired {
			delete(t.sessions, id)
			t.counters.Inc("evicted")
			if t.tracer != nil {
				t.tracer.Emit("collab.session", obs.KindSession, "evict:"+id, -1, 0, 0)
			}
		}
	}
}

// hello issues a fresh session, or refuses when the live-session gate is
// full (after sweeping expired sessions for free slots).
func (t *sessionTable) hello() (*Session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	if t.adm.MaxSessions > 0 && len(t.sessions) >= t.adm.MaxSessions {
		return nil, false
	}
	t.nextID++
	id := fmt.Sprintf("s%d", t.nextID)
	s := &Session{id: id, docIdx: -1, tokens: int64(t.adm.RateBurst), lastRefill: t.clock}
	t.sessions[id] = s
	if t.tracer != nil {
		t.tracer.Emit("collab.session", obs.KindSession, "hello:"+id, -1, 0, 0)
	}
	return s, true
}

// resume looks a session up for re-attachment. A session that is gone,
// unknown, or past its idle budget (evicted on the spot) cannot be
// resumed.
func (t *sessionTable) resume(id string) (*Session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	expired := s.gone || (s.detached && t.clock-s.detachedAt > t.idleLimit(id))
	if expired {
		s.gone = true
	}
	s.mu.Unlock()
	if expired {
		delete(t.sessions, id)
		t.counters.Inc("evicted")
		if t.tracer != nil {
			t.tracer.Emit("collab.session", obs.KindSession, "evict:"+id, -1, 0, 0)
		}
		return nil, false
	}
	if t.tracer != nil {
		t.tracer.Emit("collab.session", obs.KindSession, "resume:"+id, -1, 0, 0)
	}
	return s, true
}

// remove closes a session for good (BYE or shutdown flush).
func (t *sessionTable) remove(s *Session) {
	s.mu.Lock()
	s.gone = true
	s.mu.Unlock()
	t.mu.Lock()
	delete(t.sessions, s.id)
	t.mu.Unlock()
}

// live returns the number of live sessions.
func (t *sessionTable) live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// flush closes every live session and its attached transport — the
// graceful-shutdown path: acked edits are already merged (the server
// syncs before acking), so closing the transports lets every connection
// task complete and the accept task exit with nothing pending.
func (t *sessionTable) flush() {
	t.mu.Lock()
	var conns []net.Conn
	for id, s := range t.sessions {
		s.mu.Lock()
		s.gone = true
		if s.attached != nil {
			conns = append(conns, s.attached)
			s.attached = nil
		}
		s.mu.Unlock()
		delete(t.sessions, id)
		t.counters.Inc("flushed")
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

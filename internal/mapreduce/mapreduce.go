// Package mapreduce is a deterministic parallel map/reduce framework on
// top of Spawn & Merge — an answer to the paper's closing question about
// the "generality ... of our approach for further interesting use cases".
//
// Map tasks run in parallel on copies of a shared intermediate map; each
// publishes its shard's pre-aggregated results under shard-disjoint keys,
// so the merges are conflict-free by construction. Reduce tasks then fold
// disjoint key ranges into the final result, again conflict-free. Both
// phases merge with MergeAll, so the whole computation is deterministic:
// same inputs, same mapper/reducer, same output — bit for bit, on any
// core count.
package mapreduce

import (
	"fmt"
	"sort"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// Mapper transforms one input into key/value pairs via emit. It runs in
// its own task: it must not touch shared state beyond calling emit.
type Mapper[I any, K comparable, V any] func(input I, emit func(K, V))

// Reducer folds two values of one key into one. It must be associative
// and is applied in a deterministic order.
type Reducer[V any] func(a, b V) V

// Options tunes a run. The zero value means one map task per input and a
// reduce task per CPU-sized key chunk.
type Options struct {
	// MapShards bounds how many map tasks run (inputs are distributed
	// round-robin). 0 means one task per input.
	MapShards int
	// ReduceShards bounds how many reduce tasks run. 0 picks a small
	// multiple of the map shard count.
	ReduceShards int
}

// shardKey keys the intermediate map: per-shard results stay disjoint so
// concurrent map tasks never write the same entry.
type shardKey[K comparable] struct {
	Shard int
	Key   K
}

// Run executes the map/reduce over inputs and returns the folded result.
func Run[I any, K comparable, V any](inputs []I, m Mapper[I, K, V], r Reducer[V], opts Options) (map[K]V, error) {
	mapShards := opts.MapShards
	if mapShards <= 0 || mapShards > len(inputs) {
		mapShards = len(inputs)
	}
	if mapShards == 0 {
		return map[K]V{}, nil
	}
	reduceShards := opts.ReduceShards
	if reduceShards <= 0 {
		reduceShards = min(mapShards, 8)
	}

	intermediate := mergeable.NewMap[shardKey[K], V]()
	final := mergeable.NewMap[int, map[K]V]() // reduce shard -> partial result

	err := task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		inter := data[0].(*mergeable.Map[shardKey[K], V])
		out := data[1].(*mergeable.Map[int, map[K]V])

		// Phase 1: map. Each task pre-aggregates locally with the reducer
		// (the "combiner"), then publishes under its shard's keys.
		for s := 0; s < mapShards; s++ {
			s := s
			ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				local := make(map[K]V)
				emit := func(k K, v V) {
					if old, ok := local[k]; ok {
						local[k] = r(old, v)
					} else {
						local[k] = v
					}
				}
				for i := s; i < len(inputs); i += mapShards {
					m(inputs[i], emit)
				}
				dst := data[0].(*mergeable.Map[shardKey[K], V])
				for k, v := range local {
					dst.Set(shardKey[K]{Shard: s, Key: k}, v)
				}
				return nil
			}, inter)
		}
		if err := ctx.MergeAll(); err != nil {
			return fmt.Errorf("mapreduce: map phase: %w", err)
		}

		// Deterministic key partition for the reduce phase.
		keys := inter.Keys() // already deterministically ordered
		distinct := make([]K, 0, len(keys))
		seen := make(map[K]bool, len(keys))
		for _, sk := range keys {
			if !seen[sk.Key] {
				seen[sk.Key] = true
				distinct = append(distinct, sk.Key)
			}
		}
		sort.Slice(distinct, func(i, j int) bool {
			return fmt.Sprintf("%v", distinct[i]) < fmt.Sprintf("%v", distinct[j])
		})

		// Phase 2: reduce. Each task folds a disjoint key range from its
		// copy of the intermediate map and publishes one partial result.
		for rs := 0; rs < reduceShards; rs++ {
			rs := rs
			ctx.Spawn(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
				inter := data[0].(*mergeable.Map[shardKey[K], V])
				out := data[1].(*mergeable.Map[int, map[K]V])
				part := make(map[K]V)
				for i := rs; i < len(distinct); i += reduceShards {
					k := distinct[i]
					var acc V
					first := true
					// Fold shard contributions in deterministic shard order.
					for s := 0; s < mapShards; s++ {
						if v, ok := inter.Get(shardKey[K]{Shard: s, Key: k}); ok {
							if first {
								acc, first = v, false
							} else {
								acc = r(acc, v)
							}
						}
					}
					if !first {
						part[k] = acc
					}
				}
				out.Set(rs, part)
				return nil
			}, inter, out)
		}
		if err := ctx.MergeAll(); err != nil {
			return fmt.Errorf("mapreduce: reduce phase: %w", err)
		}
		_ = out
		return nil
	}, intermediate, final)
	if err != nil {
		return nil, err
	}

	result := make(map[K]V)
	for _, rs := range final.Keys() {
		part, _ := final.Get(rs)
		for k, v := range part {
			result[k] = v
		}
	}
	return result, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func wordMapper(line string, emit func(string, int)) {
	for _, w := range strings.Fields(line) {
		emit(w, 1)
	}
}

func sum(a, b int) int { return a + b }

var corpus = []string{
	"the quick brown fox",
	"the lazy dog",
	"the quick dog jumps",
	"brown is the new black",
}

func sequentialWordCount(lines []string) map[string]int {
	out := map[string]int{}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			out[w]++
		}
	}
	return out
}

func TestWordCount(t *testing.T) {
	got, err := Run(corpus, wordMapper, sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialWordCount(corpus)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestShardingOptions(t *testing.T) {
	want := sequentialWordCount(corpus)
	for _, opts := range []Options{
		{MapShards: 1, ReduceShards: 1},
		{MapShards: 2, ReduceShards: 3},
		{MapShards: 100, ReduceShards: 100}, // more shards than inputs/keys
	} {
		got, err := Run(corpus, wordMapper, sum, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%+v: got %v, want %v", opts, got, want)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	got, err := Run(nil, wordMapper, sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// TestAgainstSequentialModel drives random integer data through a
// sum-by-key reduction and compares with the obvious sequential fold.
func TestAgainstSequentialModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		inputs := make([][2]int, n) // (key, value)
		want := map[int]int{}
		for i := range inputs {
			k, v := r.Intn(6), r.Intn(100)
			inputs[i] = [2]int{k, v}
			want[k] += v
		}
		got, err := Run(inputs, func(in [2]int, emit func(int, int)) {
			emit(in[0], in[1])
		}, sum, Options{MapShards: 1 + r.Intn(5), ReduceShards: 1 + r.Intn(5)})
		if err != nil {
			t.Log(err)
			return false
		}
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicWithNonAssociativeObserver uses a reducer whose result
// depends on fold ORDER (string concatenation) to pin the framework's
// deterministic ordering: every run must produce the same strings.
func TestDeterministicWithNonAssociativeObserver(t *testing.T) {
	inputs := []string{"a b", "b c", "c a", "a c b"}
	mapper := func(line string, emit func(string, string)) {
		for i, w := range strings.Fields(line) {
			emit(w, fmt.Sprintf("%s%d", line[:1], i))
		}
	}
	concat := func(a, b string) string { return a + "|" + b }
	want, err := Run(inputs, mapper, concat, Options{MapShards: 3, ReduceShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := Run(inputs, mapper, concat, Options{MapShards: 3, ReduceShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: %v != %v", i, got, want)
		}
	}
}

// TestMapperPanicPropagates ensures a crashing mapper fails the run
// instead of silently dropping a shard.
func TestMapperPanicPropagates(t *testing.T) {
	_, err := Run([]string{"x"}, func(string, func(string, int)) {
		panic("mapper exploded")
	}, sum, Options{})
	if err == nil {
		t.Fatal("mapper panic should fail the run")
	}
	var pe error = err
	if !strings.Contains(pe.Error(), "map phase") {
		t.Fatalf("err = %v", err)
	}
	if errors.Is(err, nil) {
		t.Fatal("impossible")
	}
}

package mergeable

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ot"
)

// TestRunCoalescing pins the op streams the run-buffered recorders produce:
// append/push bursts become one composite SeqInsert, pop bursts one
// SeqDelete, and a push immediately popped again cancels to nothing.
func TestRunCoalescing(t *testing.T) {
	t.Run("list-append-run", func(t *testing.T) {
		l := NewList[int]()
		for i := 0; i < 5; i++ {
			l.Append(i)
		}
		ops := l.Log().LocalOps()
		if len(ops) != 1 {
			t.Fatalf("LocalOps = %v, want one composite insert", ops)
		}
		ins, ok := ops[0].(ot.SeqInsert)
		if !ok || ins.Pos != 0 || len(ins.Elems) != 5 {
			t.Fatalf("LocalOps[0] = %v, want SeqInsert{0, [0 1 2 3 4]}", ops[0])
		}
	})
	t.Run("queue-pop-run", func(t *testing.T) {
		q := NewQueue(1, 2, 3, 4)
		for i := 0; i < 3; i++ {
			q.PopFront()
		}
		ops := q.Log().LocalOps()
		if len(ops) != 1 || ops[0] != (ot.SeqDelete{Pos: 0, N: 3}) {
			t.Fatalf("LocalOps = %v, want [SeqDelete{0,3}]", ops)
		}
	})
	t.Run("push-pop-cancels", func(t *testing.T) {
		q := NewFastQueue[int]()
		for i := 0; i < 10; i++ {
			q.Push(i)
			if v, ok := q.PopFront(); !ok || v != i {
				t.Fatalf("PopFront = %v, %v", v, ok)
			}
		}
		if ops := q.Log().LocalOps(); len(ops) != 0 {
			t.Fatalf("steady-state push/pop recorded %v, want nothing", ops)
		}
	})
	t.Run("partial-cancel", func(t *testing.T) {
		l := NewList[int]()
		l.Append(10, 11, 12, 13)
		l.Delete(1) // removes 11, still inside the pending run
		ops := l.Log().LocalOps()
		if len(ops) != 1 {
			t.Fatalf("LocalOps = %v, want one spliced insert", ops)
		}
		ins := ops[0].(ot.SeqInsert)
		if fmt.Sprintf("%v", ins.Elems) != "[10 12 13]" {
			t.Fatalf("spliced run = %v, want [10 12 13]", ins.Elems)
		}
	})
	t.Run("set-run-last-writer", func(t *testing.T) {
		l := NewList(0, 0, 0)
		for k := 0; k < 30; k++ {
			l.Set(k%3, k)
		}
		ops := l.Log().LocalOps()
		if len(ops) != 3 {
			t.Fatalf("LocalOps = %v, want one set per distinct position", ops)
		}
		// First-write order with last-written values: 27, 28, 29 at 0, 1, 2.
		for i, op := range ops {
			set := op.(ot.SeqSet)
			if set.Pos != i || set.Elem != 27+i {
				t.Fatalf("ops[%d] = %v, want SeqSet{%d, %d}", i, op, i, 27+i)
			}
		}
		if fmt.Sprintf("%v", l.Values()) != "[27 28 29]" {
			t.Fatalf("Values = %v", l.Values())
		}
	})
	t.Run("set-run-sealed-by-insert", func(t *testing.T) {
		l := NewList(1, 2)
		l.Set(0, 9)
		l.Append(3)
		l.Set(0, 8)
		ops := l.Log().LocalOps()
		if len(ops) != 3 {
			t.Fatalf("LocalOps = %v, want set, insert, set", ops)
		}
		if _, ok := ops[0].(ot.SeqSet); !ok {
			t.Fatalf("ops[0] = %v, want the pre-insert set first", ops[0])
		}
		if _, ok := ops[1].(ot.SeqInsert); !ok {
			t.Fatalf("ops[1] = %v, want the insert second", ops[1])
		}
	})
	t.Run("mixed-breaks-run", func(t *testing.T) {
		l := NewList[int]()
		l.Append(1, 2)
		l.Set(0, 9)
		l.Append(3)
		ops := l.Log().LocalOps()
		if len(ops) != 3 {
			t.Fatalf("LocalOps = %v, want insert, set, insert", ops)
		}
	})
	t.Run("generic-record-does-not-coalesce", func(t *testing.T) {
		var lg Log
		lg.Record(ot.SeqDelete{Pos: 0, N: 1})
		lg.Record(ot.SeqDelete{Pos: 0, N: 1})
		if ops := lg.LocalOps(); len(ops) != 2 {
			t.Fatalf("generic Record coalesced: %v", ops)
		}
	})
}

// TestRunCoalescedMergeEquivalence replays the same mutation program
// against a structure and applies its (coalesced) local ops to a fresh
// copy of the base: the op stream must reproduce the exact final state.
func TestRunCoalescedMergeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		base := make([]int, r.Intn(6))
		for i := range base {
			base[i] = -1 - i
		}
		l := NewList(base...)
		for step := 0; step < 12; step++ {
			switch r.Intn(4) {
			case 0, 1:
				l.Append(trial*100 + step)
			case 2:
				if n := l.Len(); n > 0 {
					l.Delete(r.Intn(n))
				}
			default:
				if n := l.Len(); n > 0 {
					l.Set(r.Intn(n), trial*100+step)
				}
			}
		}
		replay := NewList(base...)
		if err := replay.ApplyRemote(l.Log().LocalOps()); err != nil {
			t.Fatalf("trial %d: replay failed: %v", trial, err)
		}
		if got, want := fmt.Sprintf("%v", replay.Values()), fmt.Sprintf("%v", l.Values()); got != want {
			t.Fatalf("trial %d: replayed %s, want %s (ops %v)", trial, got, want, l.Log().LocalOps())
		}
	}
}

// TestIncrementalFingerprint checks the running-hash fingerprints stay
// bit-identical to a from-scratch rebuild of the same contents across
// random mutation sequences, clones and adopts.
func TestIncrementalFingerprint(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		l := NewList[int]()
		q := NewQueue[string]()
		fl := NewFastList[int]()
		fq := NewFastQueue[int]()
		tx := NewText("")
		for step := 0; step < 20; step++ {
			v := r.Intn(1000) - 300
			switch r.Intn(5) {
			case 0:
				l.Append(v)
				fl.Append(v)
				q.Push(fmt.Sprintf("s%d", v))
				fq.Push(v)
				tx.Append(fmt.Sprintf("%d;", v))
			case 1:
				if l.Len() > 0 {
					l.Set(r.Intn(l.Len()), v)
				}
				if fl.Len() > 0 {
					fl.Set(r.Intn(fl.Len()), v)
				}
			case 2:
				q.PopFront()
				fq.PopFront()
			case 3:
				if l.Len() > 0 {
					l.Delete(r.Intn(l.Len()))
				}
				if tx.Len() > 0 {
					tx.Delete(r.Intn(tx.Len()), 1)
				}
			default:
				// interleave fingerprint reads so the cache arms mid-history
				_ = l.Fingerprint()
				_ = q.Fingerprint()
				_ = tx.Fingerprint()
			}
		}
		if got, want := l.Fingerprint(), NewList(l.Values()...).Fingerprint(); got != want {
			t.Fatalf("trial %d: list fingerprint %x, rebuild %x (%v)", trial, got, want, l.Values())
		}
		if got, want := q.Fingerprint(), NewQueue(q.Values()...).Fingerprint(); got != want {
			t.Fatalf("trial %d: queue fingerprint %x, rebuild %x (%v)", trial, got, want, q.Values())
		}
		if got, want := fl.Fingerprint(), NewFastList(fl.Values()...).Fingerprint(); got != want {
			t.Fatalf("trial %d: fastlist fingerprint %x, rebuild %x", trial, got, want)
		}
		if got, want := fq.Fingerprint(), NewFastQueue(fq.Values()...).Fingerprint(); got != want {
			t.Fatalf("trial %d: fastqueue fingerprint %x, rebuild %x", trial, got, want)
		}
		if got, want := tx.Fingerprint(), NewText(tx.String()).Fingerprint(); got != want {
			t.Fatalf("trial %d: text fingerprint %x, rebuild %x (%q)", trial, got, want, tx.String())
		}
		// Fingerprints must also match the legacy FNV rendering exactly.
		if got, want := l.Fingerprint(), FingerprintString(l.render()); got != want {
			t.Fatalf("trial %d: list fingerprint %x diverges from rendering hash %x", trial, got, want)
		}
		if got, want := fq.Fingerprint(), q2Render(fq.Values()); got != want {
			t.Fatalf("trial %d: fastqueue fingerprint %x diverges from rendering hash %x", trial, got, want)
		}
		clone := l.CloneValue().(*List[int])
		clone.Append(12345)
		l.Append(999)
		if got, want := clone.Fingerprint(), NewList(clone.Values()...).Fingerprint(); got != want {
			t.Fatalf("trial %d: cloned list fingerprint %x, rebuild %x", trial, got, want)
		}
		if got, want := l.Fingerprint(), NewList(l.Values()...).Fingerprint(); got != want {
			t.Fatalf("trial %d: parent list fingerprint %x after clone, rebuild %x", trial, got, want)
		}
	}
}

// q2Render hashes a queue rendering the way the legacy implementation did.
func q2Render[T any](vals []T) uint64 {
	s := "queue["
	for i, v := range vals {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v", v)
	}
	return FingerprintString(s + "]")
}

// TestLogRecycle pins the recycle contract: only a fully-empty state is
// pooled, and the log stays usable afterwards.
func TestLogRecycle(t *testing.T) {
	var lg Log
	lg.Record(ot.CounterAdd{Delta: 1})
	lg.Recycle() // has locals: must refuse
	if len(lg.LocalOps()) != 1 {
		t.Fatal("Recycle dropped pending local ops")
	}
	lg.FlushLocal()
	lg.Trim(lg.CommittedLen())
	lg.Recycle() // committed emptied by trim: recycles
	if lg.CommittedLen() != 1 {
		t.Fatalf("CommittedLen = %d after recycle, want 1 (versions stay monotone)", lg.CommittedLen())
	}
	if got := lg.CommittedSince(1); len(got) != 0 {
		t.Fatalf("CommittedSince(1) = %v after recycle, want empty", got)
	}
	lg.Record(ot.CounterAdd{Delta: 2}) // must lazily reallocate
	if len(lg.LocalOps()) != 1 {
		t.Fatal("log unusable after recycle")
	}
	lg.FlushLocal()
	if lg.CommittedLen() != 2 {
		t.Fatalf("CommittedLen = %d after post-recycle flush, want 2", lg.CommittedLen())
	}
}

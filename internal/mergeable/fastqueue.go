package mergeable

import (
	"fmt"

	"repro/internal/cow"
	"repro/internal/ot"
)

// FastQueue is a mergeable FIFO queue backed by a persistent
// (copy-on-write) vector instead of a deep-copied slice. It implements
// the optimization the paper's conclusion announces as future work:
// because the vector is immutable and structurally shared, CloneValue and
// AdoptFrom are O(1), which removes most of the constant spawn/sync
// copying overhead Section III measures. Semantics are identical to
// Queue; the netsim ablation engines and BenchmarkCloneDeepVsCOW quantify
// the difference.
//
// Representation: vec holds the queue's elements from index head onward.
// PopFront advances head instead of copying; the prefix is compacted away
// once it dominates the vector.
type FastQueue[T any] struct {
	log  Log
	vec  cow.Vector[T]
	head int
	// fp caches the running FNV-1a state of the fingerprint rendering;
	// pushes extend it incrementally, pops and splices invalidate.
	fp fpCache
}

// NewFastQueue returns a COW-backed mergeable queue holding vals
// front-to-back.
func NewFastQueue[T any](vals ...T) *FastQueue[T] {
	return &FastQueue[T]{vec: cow.New(vals...)}
}

// Log implements Mergeable.
func (q *FastQueue[T]) Log() *Log { return &q.log }

// Len returns the number of queued elements.
func (q *FastQueue[T]) Len() int {
	q.log.ensureUsable()
	return q.vec.Len() - q.head
}

// Empty reports whether the queue holds no elements.
func (q *FastQueue[T]) Empty() bool { return q.Len() == 0 }

// Push appends v to the back of the queue. The push is recorded through
// the run-coalescing recorder: a burst of pushes logs one composite
// SeqInsert, and a push immediately popped again logs nothing at all.
func (q *FastQueue[T]) Push(v T) {
	q.log.ensureUsable()
	pos := q.vec.Len() - q.head
	q.vec = q.vec.AppendOwned(v)
	q.fp.fold(v)
	q.log.recordSeqInsert1(pos, v)
}

// PopFront removes and returns the front element. ok is false when the
// queue is empty.
func (q *FastQueue[T]) PopFront() (v T, ok bool) {
	q.log.ensureUsable()
	if q.vec.Len() == q.head {
		return v, false
	}
	v = q.vec.Get(q.head)
	q.head++
	q.maybeCompact()
	q.fp.invalidate()
	q.log.recordSeqDelete(0, 1)
	return v, true
}

// Peek returns the front element without removing it.
func (q *FastQueue[T]) Peek() (v T, ok bool) {
	q.log.ensureUsable()
	if q.vec.Len() == q.head {
		return v, false
	}
	return q.vec.Get(q.head), true
}

// Values returns a copy of the queued elements, front first.
func (q *FastQueue[T]) Values() []T {
	q.log.ensureUsable()
	return q.tail()
}

// maybeCompact rebuilds the vector without the consumed prefix once the
// prefix dominates, keeping memory proportional to the live queue.
func (q *FastQueue[T]) maybeCompact() {
	if q.head < 64 || q.head <= q.vec.Len()/2 {
		return
	}
	cow.Replace(&q.vec, cow.FromSlice(q.tail()))
	q.head = 0
}

// tail returns the live elements via one bulk Slice instead of a per-index
// trie walk.
func (q *FastQueue[T]) tail() []T {
	if q.head == 0 {
		return q.vec.Slice()
	}
	return q.vec.Slice()[q.head:]
}

// applySeq applies one remote sequence op. Front deletions and back
// insertions — the only shapes queue usage produces — take O(1)/O(log n)
// fast paths; anything else falls back to rebuilding, which stays correct
// for arbitrary transformed operations.
func (q *FastQueue[T]) applySeq(op ot.Op) error {
	n := q.vec.Len() - q.head
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > n {
			return fmt.Errorf("mergeable: fastqueue %s out of range for length %d", v, n)
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: fastqueue %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		if v.Pos == n { // append fast path
			for _, x := range vals {
				q.vec = q.vec.AppendOwned(x)
				q.fp.fold(x)
			}
			return nil
		}
		cur := q.tail()
		out := append(cur[:v.Pos:v.Pos], append(vals, cur[v.Pos:]...)...)
		cow.Replace(&q.vec, cow.FromSlice(out))
		q.head = 0
		q.fp.invalidate()
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > n {
			return fmt.Errorf("mergeable: fastqueue %s out of range for length %d", v, n)
		}
		q.fp.invalidate()
		if v.Pos == 0 { // front-deletion fast path
			q.head += v.N
			q.maybeCompact()
			return nil
		}
		cur := q.tail()
		out := append(cur[:v.Pos:v.Pos], cur[v.Pos+v.N:]...)
		cow.Replace(&q.vec, cow.FromSlice(out))
		q.head = 0
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= n {
			return fmt.Errorf("mergeable: fastqueue %s out of range for length %d", v, n)
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: fastqueue %s carries %T", v, v.Elem)
		}
		q.vec = q.vec.SetOwned(q.head+v.Pos, tv)
		q.fp.invalidate()
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a queue operation", op.Kind())
}

// CloneValue implements Mergeable. It is O(1): the persistent vector is
// shared structurally. The parent marks its tail shared and hands the
// child a capacity-clipped view (see List.CloneValue).
func (q *FastQueue[T]) CloneValue() Mergeable {
	q.vec.MarkShared()
	return &FastQueue[T]{vec: q.vec.Sealed(), head: q.head, fp: q.fp}
}

// ApplyRemote implements Mergeable.
func (q *FastQueue[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := q.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable. Also O(1).
func (q *FastQueue[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*FastQueue[T])
	if !ok {
		return adoptErr(q, src)
	}
	s.vec.MarkShared() // shared from here on; see CloneValue
	q.vec, q.head = s.vec.Sealed(), s.head
	q.fp = s.fp
	return nil
}

// Fingerprint implements Mergeable. It matches Queue's fingerprint for
// equal contents, so cross-ablation oracles can compare them directly.
// O(1) for push-only histories via the running hash.
func (q *FastQueue[T]) Fingerprint() uint64 {
	if !q.fp.ok {
		c := fpCache{h: fnvFoldString(fnvOffset64, "queue["), ok: true}
		for _, e := range q.tail() {
			c.fold(e)
		}
		q.fp = c
	}
	return fnvFoldByte(q.fp.h, ']')
}

// String renders the queue front-to-back.
func (q *FastQueue[T]) String() string {
	q.log.ensureUsable()
	return fmt.Sprintf("%v", q.Values())
}

package mergeable

import (
	"fmt"
	"strings"

	"repro/internal/cow"
	"repro/internal/ot"
)

// FastQueue is a mergeable FIFO queue backed by a persistent
// (copy-on-write) vector instead of a deep-copied slice. It implements
// the optimization the paper's conclusion announces as future work:
// because the vector is immutable and structurally shared, CloneValue and
// AdoptFrom are O(1), which removes most of the constant spawn/sync
// copying overhead Section III measures. Semantics are identical to
// Queue; the netsim ablation engines and BenchmarkCloneDeepVsCOW quantify
// the difference.
//
// Representation: vec holds the queue's elements from index head onward.
// PopFront advances head instead of copying; the prefix is compacted away
// once it dominates the vector.
type FastQueue[T any] struct {
	log  Log
	vec  cow.Vector[T]
	head int
}

// NewFastQueue returns a COW-backed mergeable queue holding vals
// front-to-back.
func NewFastQueue[T any](vals ...T) *FastQueue[T] {
	return &FastQueue[T]{vec: cow.New(vals...)}
}

// Log implements Mergeable.
func (q *FastQueue[T]) Log() *Log { return &q.log }

// Len returns the number of queued elements.
func (q *FastQueue[T]) Len() int {
	q.log.ensureUsable()
	return q.vec.Len() - q.head
}

// Empty reports whether the queue holds no elements.
func (q *FastQueue[T]) Empty() bool { return q.Len() == 0 }

// Push appends v to the back of the queue.
func (q *FastQueue[T]) Push(v T) {
	q.log.ensureUsable()
	op := ot.SeqInsert{Pos: q.vec.Len() - q.head, Elems: []any{v}}
	q.vec = q.vec.AppendOwned(v)
	q.log.Record(op)
}

// PopFront removes and returns the front element. ok is false when the
// queue is empty.
func (q *FastQueue[T]) PopFront() (v T, ok bool) {
	q.log.ensureUsable()
	if q.vec.Len() == q.head {
		return v, false
	}
	v = q.vec.Get(q.head)
	q.head++
	q.maybeCompact()
	q.log.Record(ot.SeqDelete{Pos: 0, N: 1})
	return v, true
}

// Peek returns the front element without removing it.
func (q *FastQueue[T]) Peek() (v T, ok bool) {
	q.log.ensureUsable()
	if q.vec.Len() == q.head {
		return v, false
	}
	return q.vec.Get(q.head), true
}

// Values returns a copy of the queued elements, front first.
func (q *FastQueue[T]) Values() []T {
	q.log.ensureUsable()
	out := make([]T, 0, q.Len())
	for i := q.head; i < q.vec.Len(); i++ {
		out = append(out, q.vec.Get(i))
	}
	return out
}

// maybeCompact rebuilds the vector without the consumed prefix once the
// prefix dominates, keeping memory proportional to the live queue.
func (q *FastQueue[T]) maybeCompact() {
	if q.head < 64 || q.head <= q.vec.Len()/2 {
		return
	}
	q.vec = cow.New(q.tail()...)
	q.head = 0
}

func (q *FastQueue[T]) tail() []T {
	out := make([]T, 0, q.vec.Len()-q.head)
	for i := q.head; i < q.vec.Len(); i++ {
		out = append(out, q.vec.Get(i))
	}
	return out
}

// applySeq applies one remote sequence op. Front deletions and back
// insertions — the only shapes queue usage produces — take O(1)/O(log n)
// fast paths; anything else falls back to rebuilding, which stays correct
// for arbitrary transformed operations.
func (q *FastQueue[T]) applySeq(op ot.Op) error {
	n := q.vec.Len() - q.head
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > n {
			return fmt.Errorf("mergeable: fastqueue %s out of range for length %d", v, n)
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: fastqueue %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		if v.Pos == n { // append fast path
			for _, x := range vals {
				q.vec = q.vec.AppendOwned(x)
			}
			return nil
		}
		cur := q.tail()
		out := append(cur[:v.Pos:v.Pos], append(vals, cur[v.Pos:]...)...)
		q.vec, q.head = cow.New(out...), 0
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > n {
			return fmt.Errorf("mergeable: fastqueue %s out of range for length %d", v, n)
		}
		if v.Pos == 0 { // front-deletion fast path
			q.head += v.N
			q.maybeCompact()
			return nil
		}
		cur := q.tail()
		out := append(cur[:v.Pos:v.Pos], cur[v.Pos+v.N:]...)
		q.vec, q.head = cow.New(out...), 0
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= n {
			return fmt.Errorf("mergeable: fastqueue %s out of range for length %d", v, n)
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: fastqueue %s carries %T", v, v.Elem)
		}
		q.vec = q.vec.Set(q.head+v.Pos, tv)
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a queue operation", op.Kind())
}

// CloneValue implements Mergeable. It is O(1): the persistent vector is
// shared structurally.
func (q *FastQueue[T]) CloneValue() Mergeable {
	q.vec.SealTail() // shared from here on; AppendOwned must copy
	return &FastQueue[T]{vec: q.vec, head: q.head}
}

// ApplyRemote implements Mergeable.
func (q *FastQueue[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := q.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable. Also O(1).
func (q *FastQueue[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*FastQueue[T])
	if !ok {
		return adoptErr(q, src)
	}
	s.vec.SealTail() // shared from here on; see CloneValue
	q.vec, q.head = s.vec, s.head
	return nil
}

// Fingerprint implements Mergeable. It matches Queue's fingerprint for
// equal contents, so cross-ablation oracles can compare them directly.
func (q *FastQueue[T]) Fingerprint() uint64 {
	var sb strings.Builder
	sb.WriteString("queue[")
	for i := q.head; i < q.vec.Len(); i++ {
		if i > q.head {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v", q.vec.Get(i))
	}
	sb.WriteByte(']')
	return FingerprintString(sb.String())
}

// String renders the queue front-to-back.
func (q *FastQueue[T]) String() string {
	q.log.ensureUsable()
	return fmt.Sprintf("%v", q.Values())
}

package mergeable

import (
	"fmt"
	"strconv"
)

// Interning: the one-element Elems slices recorded by list appends and
// queue pushes dominate merge-path allocations in integer-heavy workloads.
// For small ints the slice (and the boxed element inside it) comes from a
// precomputed table instead of the heap. The slices are shared and must be
// treated as immutable — operation Elems already are throughout the
// codebase (compaction and transformation splice into fresh slices).
const (
	smallIntMin = -128
	smallIntMax = 256
)

var (
	smallIntAny   [smallIntMax - smallIntMin]any
	smallIntElems [smallIntMax - smallIntMin][]any
)

func init() {
	for i := range smallIntAny {
		smallIntAny[i] = i + smallIntMin
		smallIntElems[i] = smallIntAny[i : i+1 : i+1]
	}
}

// internElems1 returns a one-element []any for e, interned when e is a
// small int.
func internElems1(e any) []any {
	if v, ok := e.(int); ok && v >= smallIntMin && v < smallIntMax {
		return smallIntElems[v-smallIntMin]
	}
	return []any{e}
}

// Incremental fingerprints. Every provided structure fingerprints a
// deterministic string rendering of its value ("list[e0 e1 ...]" etc.) with
// FNV-1a. Rebuilding that rendering on every Fingerprint call is O(n) and
// allocates; append-heavy structures instead maintain the running FNV-1a
// state over the rendering's prefix and fold each appended element as it
// arrives. The helpers below reproduce fmt's %v byte-for-byte for the
// element types that matter, falling back to fmt for the rest, so the
// incremental hash is bit-identical to FingerprintString of the full
// rendering.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fpCache is the running-hash state embedded in append-heavy structures.
// When ok, h is the FNV-1a state over the rendering of the first count
// elements (including the opening "kind[" prefix but no closing bracket);
// any mutation other than an append invalidates it.
type fpCache struct {
	h     uint64
	count int
	ok    bool
}

// fold absorbs one appended element into the running hash (no-op when the
// cache is invalid).
func (c *fpCache) fold(e any) {
	if !c.ok {
		return
	}
	h := c.h
	if c.count > 0 {
		h = (h ^ ' ') * fnvPrime64
	}
	c.h = fnvFoldElem(h, e)
	c.count++
}

func (c *fpCache) invalidate() { c.ok = false }

func fnvFoldByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvFoldElem folds the %v rendering of e into h without going through fmt
// for the common scalar element types.
func fnvFoldElem(h uint64, e any) uint64 {
	var buf [32]byte
	switch v := e.(type) {
	case int:
		return fnvFoldBytes(h, strconv.AppendInt(buf[:0], int64(v), 10))
	case int64:
		return fnvFoldBytes(h, strconv.AppendInt(buf[:0], v, 10))
	case uint64:
		return fnvFoldBytes(h, strconv.AppendUint(buf[:0], v, 10))
	case string:
		return fnvFoldString(h, v)
	case bool:
		if v {
			return fnvFoldString(h, "true")
		}
		return fnvFoldString(h, "false")
	case float64:
		return fnvFoldBytes(h, strconv.AppendFloat(buf[:0], v, 'g', -1, 64))
	default:
		return fnvFoldString(h, fmt.Sprintf("%v", e))
	}
}

func fnvFoldBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

package mergeable

import (
	"fmt"

	"repro/internal/ot"
)

// Text is a mergeable text buffer — the collaborative-editing structure
// operational transformation was invented for. Positions address runes.
type Text struct {
	log   Log
	runes []rune
	// fp caches the running FNV-1a state over "text:" + the buffer's UTF-8
	// rendering; appends at the end extend it, everything else invalidates.
	// Text has no separators, so fp.count is unused (fold is not used — the
	// hash state is extended directly).
	fp fpCache
}

// NewText returns a mergeable text buffer initialized with s.
func NewText(s string) *Text {
	return &Text{runes: []rune(s)}
}

// Log implements Mergeable.
func (t *Text) Log() *Log { return &t.log }

// Len returns the length in runes.
func (t *Text) Len() int {
	t.log.ensureUsable()
	return len(t.runes)
}

// String returns the buffer contents.
func (t *Text) String() string {
	t.log.ensureUsable()
	return string(t.runes)
}

// Insert inserts s before rune position pos.
func (t *Text) Insert(pos int, s string) {
	t.log.ensureUsable()
	if pos < 0 || pos > len(t.runes) {
		panic(fmt.Sprintf("mergeable: Text.Insert position %d out of range [0,%d]", pos, len(t.runes)))
	}
	if s == "" {
		return
	}
	op := ot.TextInsert{Pos: pos, Text: s}
	if pos == len(t.runes) && t.fp.ok {
		t.fp.h = fnvFoldString(t.fp.h, s)
	} else {
		t.fp.invalidate()
	}
	t.mustApply(op)
	t.log.Record(op)
}

// Append adds s to the end of the buffer.
func (t *Text) Append(s string) { t.Insert(len(t.runes), s) }

// Delete removes n runes starting at position pos.
func (t *Text) Delete(pos, n int) {
	t.log.ensureUsable()
	if n < 0 || pos < 0 || pos+n > len(t.runes) {
		panic(fmt.Sprintf("mergeable: Text.Delete range [%d,%d) out of range [0,%d]", pos, pos+n, len(t.runes)))
	}
	if n == 0 {
		return
	}
	op := ot.TextDelete{Pos: pos, N: n}
	t.fp.invalidate()
	t.mustApply(op)
	t.log.Record(op)
}

func (t *Text) mustApply(op ot.Op) {
	out, err := ot.ApplyText(t.runes, op)
	if err != nil {
		panic(err)
	}
	t.runes = out
}

// CloneValue implements Mergeable.
func (t *Text) CloneValue() Mergeable {
	return &Text{runes: append([]rune(nil), t.runes...), fp: t.fp}
}

// ApplyRemote implements Mergeable.
func (t *Text) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		v, isAppend := op.(ot.TextInsert)
		isAppend = isAppend && v.Pos == len(t.runes) && t.fp.ok
		out, err := ot.ApplyText(t.runes, op)
		if err != nil {
			return err
		}
		t.runes = out
		if isAppend {
			t.fp.h = fnvFoldString(t.fp.h, v.Text)
		} else {
			t.fp.invalidate()
		}
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (t *Text) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Text)
	if !ok {
		return adoptErr(t, src)
	}
	t.runes = append(t.runes[:0:0], s.runes...)
	t.fp = s.fp
	return nil
}

// Fingerprint implements Mergeable. O(1) for append-only histories via the
// running hash.
func (t *Text) Fingerprint() uint64 {
	if !t.fp.ok {
		h := fnvFoldString(fnvOffset64, "text:")
		h = fnvFoldString(h, string(t.runes))
		t.fp = fpCache{h: h, ok: true}
	}
	return t.fp.h
}

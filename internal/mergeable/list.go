package mergeable

import (
	"fmt"
	"strings"

	"repro/internal/cow"
	"repro/internal/ot"
)

// List is a mergeable ordered sequence of values, the workhorse structure of
// the paper's examples (Listing 1 operates on a mergeable list).
//
// Concurrent modifications by different tasks are reconciled element-wise
// with the sequence OT algebra: insertions shift concurrent indices,
// deletions absorb overlapping deletions, and a deletion crossing a
// concurrent insertion splits around it.
//
// The list is backed by a persistent (copy-on-write) vector, so the deep
// copy every Spawn and Sync takes is O(1) structural sharing rather than an
// element-wise copy — the optimization the paper's conclusion announces as
// future work. Appends and overwrites mutate O(log n) trie nodes; arbitrary
// insertions and deletions rebuild the vector in O(n), the same bound the
// previous slice backing had.
type List[T any] struct {
	log Log
	vec cow.Vector[T]
	// fp caches the running FNV-1a state of the fingerprint rendering's
	// prefix; appends extend it incrementally, other mutations invalidate.
	fp fpCache
}

// NewList returns a mergeable list holding vals.
func NewList[T any](vals ...T) *List[T] {
	return &List[T]{vec: cow.FromSlice(vals)}
}

// Log implements Mergeable.
func (l *List[T]) Log() *Log { return &l.log }

// Len returns the number of elements.
func (l *List[T]) Len() int {
	l.log.ensureUsable()
	return l.vec.Len()
}

// Get returns the element at index i.
func (l *List[T]) Get(i int) T {
	l.log.ensureUsable()
	return l.vec.Get(i)
}

// Values returns a copy of the list's contents.
func (l *List[T]) Values() []T {
	l.log.ensureUsable()
	return l.vec.Slice()
}

// Append adds vals to the end of the list.
func (l *List[T]) Append(vals ...T) {
	l.Insert(l.vec.Len(), vals...)
}

// Insert inserts vals before index i. Appends skip the generic operation
// path entirely: each element goes straight into the vector and the
// run-coalescing recorder, so an append loop logs one composite SeqInsert
// and never builds intermediate []any boxes.
func (l *List[T]) Insert(i int, vals ...T) {
	l.log.ensureUsable()
	n := l.vec.Len()
	if i < 0 || i > n {
		panic(fmt.Sprintf("mergeable: List.Insert index %d out of range [0,%d]", i, n))
	}
	if len(vals) == 0 {
		return
	}
	if i == n { // append fast path
		for j, v := range vals {
			l.vec = l.vec.AppendOwned(v)
			l.fp.fold(v)
			l.log.recordSeqInsert1(i+j, v)
		}
		return
	}
	elems := make([]any, len(vals))
	for j, v := range vals {
		elems[j] = v
	}
	op := ot.SeqInsert{Pos: i, Elems: elems}
	l.applySeq(op)
	l.log.Record(op)
}

// Delete removes the element at index i.
func (l *List[T]) Delete(i int) { l.DeleteN(i, 1) }

// DeleteN removes n consecutive elements starting at index i.
func (l *List[T]) DeleteN(i, n int) {
	l.log.ensureUsable()
	if n < 0 || i < 0 || i+n > l.vec.Len() {
		panic(fmt.Sprintf("mergeable: List.DeleteN range [%d,%d) out of range [0,%d]", i, i+n, l.vec.Len()))
	}
	if n == 0 {
		return
	}
	if i+n == l.vec.Len() { // trailing deletion fast path
		for k := 0; k < n; k++ {
			l.vec = l.vec.Pop()
		}
	} else {
		cur := l.vec.Slice()
		cow.Replace(&l.vec, cow.FromSlice(append(cur[:i:i], cur[i+n:]...)))
	}
	l.fp.invalidate()
	l.log.recordSeqDelete(i, n)
}

// Set overwrites the element at index i. The write goes through SetOwned —
// the single-owner façade guarantees exclusive ownership of the backing
// vector (clones mark the tail shared first) — so an overwrite loop mutates
// the tail in place instead of copying it per write.
func (l *List[T]) Set(i int, v T) {
	l.log.ensureUsable()
	if i < 0 || i >= l.vec.Len() {
		panic(fmt.Sprintf("mergeable: List.Set index %d out of range [0,%d)", i, l.vec.Len()))
	}
	l.vec = l.vec.SetOwned(i, v)
	l.fp.invalidate()
	l.log.recordSeqSet(i, v)
}

// applySeq applies a sequence op to the backing vector. Appends, trailing
// deletions and overwrites take persistent-vector fast paths; interior
// splices rebuild via the bulk loader.
func (l *List[T]) applySeq(op ot.Op) error {
	n := l.vec.Len()
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > n {
			return fmt.Errorf("mergeable: list %s out of range for length %d", v, n)
		}
		if v.Pos == n { // append fast path, no intermediate []T
			for _, e := range v.Elems { // validate first: an op applies atomically
				if tv, ok := e.(T); !ok {
					return fmt.Errorf("mergeable: list %s carries %T, want %T", v, e, tv)
				}
			}
			for _, e := range v.Elems {
				tv := e.(T)
				l.vec = l.vec.AppendOwned(tv)
				l.fp.fold(tv)
			}
			return nil
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: list %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		cur := l.vec.Slice()
		out := append(cur[:v.Pos:v.Pos], append(vals, cur[v.Pos:]...)...)
		cow.Replace(&l.vec, cow.FromSlice(out))
		l.fp.invalidate()
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > n {
			return fmt.Errorf("mergeable: list %s out of range for length %d", v, n)
		}
		l.fp.invalidate()
		if v.Pos+v.N == n { // trailing deletion fast path
			for i := 0; i < v.N; i++ {
				l.vec = l.vec.Pop()
			}
			return nil
		}
		cur := l.vec.Slice()
		out := append(cur[:v.Pos:v.Pos], cur[v.Pos+v.N:]...)
		cow.Replace(&l.vec, cow.FromSlice(out))
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= n {
			return fmt.Errorf("mergeable: list %s out of range for length %d", v, n)
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: list %s carries %T", v, v.Elem)
		}
		l.vec = l.vec.SetOwned(v.Pos, tv)
		l.fp.invalidate()
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a list operation", op.Kind())
}

// CloneValue implements Mergeable. It is O(1): the persistent vector is
// shared structurally, which is what makes spawning on large lists cheap.
// The parent marks its tail shared (so in-place overwrites copy first) and
// hands the child a capacity-clipped view (so in-place appends on either
// side stay invisible to the other); the parent's own append run keeps its
// spare capacity and continues in place.
func (l *List[T]) CloneValue() Mergeable {
	l.vec.MarkShared()
	return &List[T]{vec: l.vec.Sealed(), fp: l.fp}
}

// ApplyRemote implements Mergeable.
func (l *List[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := l.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable. Also O(1).
func (l *List[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*List[T])
	if !ok {
		return adoptErr(l, src)
	}
	s.vec.MarkShared() // shared from here on; see CloneValue
	l.vec = s.vec.Sealed()
	l.fp = s.fp
	return nil
}

// Fingerprint implements Mergeable. The running hash makes it O(1) for
// append-only histories; anything else rebuilds lazily (and re-arms the
// incremental path).
func (l *List[T]) Fingerprint() uint64 {
	if !l.fp.ok {
		c := fpCache{h: fnvFoldString(fnvOffset64, "list["), ok: true}
		for _, e := range l.vec.Slice() {
			c.fold(e)
		}
		l.fp = c
	}
	return fnvFoldByte(l.fp.h, ']')
}

func (l *List[T]) render() string {
	var sb strings.Builder
	sb.WriteString("list[")
	for i, e := range l.vec.Slice() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v", e)
	}
	sb.WriteByte(']')
	return sb.String()
}

// String renders the list like fmt does for slices.
func (l *List[T]) String() string {
	l.log.ensureUsable()
	return fmt.Sprintf("%v", l.vec.Slice())
}

package mergeable

import (
	"fmt"
	"strings"

	"repro/internal/ot"
)

// List is a mergeable ordered sequence of values, the workhorse structure of
// the paper's examples (Listing 1 operates on a mergeable list).
//
// Concurrent modifications by different tasks are reconciled element-wise
// with the sequence OT algebra: insertions shift concurrent indices,
// deletions absorb overlapping deletions, and a deletion crossing a
// concurrent insertion splits around it.
type List[T any] struct {
	log   Log
	elems []T
}

// NewList returns a mergeable list holding vals.
func NewList[T any](vals ...T) *List[T] {
	l := &List[T]{}
	l.elems = append(l.elems, vals...)
	return l
}

// Log implements Mergeable.
func (l *List[T]) Log() *Log { return &l.log }

// Len returns the number of elements.
func (l *List[T]) Len() int {
	l.log.ensureUsable()
	return len(l.elems)
}

// Get returns the element at index i.
func (l *List[T]) Get(i int) T {
	l.log.ensureUsable()
	return l.elems[i]
}

// Values returns a copy of the list's contents.
func (l *List[T]) Values() []T {
	l.log.ensureUsable()
	return append([]T(nil), l.elems...)
}

// Append adds vals to the end of the list.
func (l *List[T]) Append(vals ...T) {
	l.Insert(len(l.elems), vals...)
}

// Insert inserts vals before index i.
func (l *List[T]) Insert(i int, vals ...T) {
	l.log.ensureUsable()
	if i < 0 || i > len(l.elems) {
		panic(fmt.Sprintf("mergeable: List.Insert index %d out of range [0,%d]", i, len(l.elems)))
	}
	if len(vals) == 0 {
		return
	}
	elems := make([]any, len(vals))
	for j, v := range vals {
		elems[j] = v
	}
	op := ot.SeqInsert{Pos: i, Elems: elems}
	l.applySeq(op)
	l.log.Record(op)
}

// Delete removes the element at index i.
func (l *List[T]) Delete(i int) { l.DeleteN(i, 1) }

// DeleteN removes n consecutive elements starting at index i.
func (l *List[T]) DeleteN(i, n int) {
	l.log.ensureUsable()
	if n < 0 || i < 0 || i+n > len(l.elems) {
		panic(fmt.Sprintf("mergeable: List.DeleteN range [%d,%d) out of range [0,%d]", i, i+n, len(l.elems)))
	}
	if n == 0 {
		return
	}
	op := ot.SeqDelete{Pos: i, N: n}
	l.applySeq(op)
	l.log.Record(op)
}

// Set overwrites the element at index i.
func (l *List[T]) Set(i int, v T) {
	l.log.ensureUsable()
	if i < 0 || i >= len(l.elems) {
		panic(fmt.Sprintf("mergeable: List.Set index %d out of range [0,%d)", i, len(l.elems)))
	}
	op := ot.SeqSet{Pos: i, Elem: v}
	l.applySeq(op)
	l.log.Record(op)
}

// applySeq applies a sequence op to the typed element slice.
func (l *List[T]) applySeq(op ot.Op) error {
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > len(l.elems) {
			return fmt.Errorf("mergeable: list %s out of range for length %d", v, len(l.elems))
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: list %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		l.elems = append(l.elems[:v.Pos:v.Pos], append(vals, l.elems[v.Pos:]...)...)
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > len(l.elems) {
			return fmt.Errorf("mergeable: list %s out of range for length %d", v, len(l.elems))
		}
		l.elems = append(l.elems[:v.Pos], l.elems[v.Pos+v.N:]...)
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= len(l.elems) {
			return fmt.Errorf("mergeable: list %s out of range for length %d", v, len(l.elems))
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: list %s carries %T", v, v.Elem)
		}
		l.elems[v.Pos] = tv
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a list operation", op.Kind())
}

// CloneValue implements Mergeable.
func (l *List[T]) CloneValue() Mergeable {
	c := &List[T]{}
	c.elems = append([]T(nil), l.elems...)
	return c
}

// ApplyRemote implements Mergeable.
func (l *List[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := l.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (l *List[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*List[T])
	if !ok {
		return adoptErr(l, src)
	}
	l.elems = append(l.elems[:0:0], s.elems...)
	return nil
}

// Fingerprint implements Mergeable.
func (l *List[T]) Fingerprint() uint64 {
	return FingerprintString(l.render())
}

func (l *List[T]) render() string {
	var sb strings.Builder
	sb.WriteString("list[")
	for i, e := range l.elems {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v", e)
	}
	sb.WriteByte(']')
	return sb.String()
}

// String renders the list like fmt does for slices.
func (l *List[T]) String() string {
	l.log.ensureUsable()
	return fmt.Sprintf("%v", l.elems)
}

package mergeable

import (
	"fmt"

	"repro/internal/cow"
	"repro/internal/ot"
)

// Queue is a mergeable FIFO queue, the structure used by the paper's
// network-simulation example (Listing 4: "MergeableQueue").
//
// Push appends to the back; PopFront removes from the front. Under the
// sequence OT algebra a pop that races another pop of the same element
// collapses into a single removal, so a queue with one consumer per queue —
// the simulation's shape — behaves exactly like a locked queue, without the
// lock.
//
// The queue is backed by a persistent (copy-on-write) vector: vec holds the
// elements from index head onward, PopFront advances head instead of
// copying, and the consumed prefix is compacted away once it dominates.
// CloneValue and AdoptFrom are O(1) structural sharing, which removes the
// per-spawn deep-copy overhead Section III measures.
type Queue[T any] struct {
	log  Log
	vec  cow.Vector[T]
	head int
	// fp caches the running FNV-1a state of the fingerprint rendering;
	// pushes extend it incrementally, pops and splices invalidate.
	fp fpCache
}

// NewQueue returns a mergeable queue holding vals front-to-back.
func NewQueue[T any](vals ...T) *Queue[T] {
	return &Queue[T]{vec: cow.FromSlice(vals)}
}

// Log implements Mergeable.
func (q *Queue[T]) Log() *Log { return &q.log }

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int {
	q.log.ensureUsable()
	return q.vec.Len() - q.head
}

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }

// Push appends v to the back of the queue. The push is recorded through
// the run-coalescing recorder: a burst of pushes logs one composite
// SeqInsert, and a push immediately popped again logs nothing at all.
func (q *Queue[T]) Push(v T) {
	q.log.ensureUsable()
	pos := q.vec.Len() - q.head
	q.vec = q.vec.AppendOwned(v)
	q.fp.fold(v)
	q.log.recordSeqInsert1(pos, v)
}

// PopFront removes and returns the front element. ok is false when the
// queue is empty.
func (q *Queue[T]) PopFront() (v T, ok bool) {
	q.log.ensureUsable()
	if q.vec.Len() == q.head {
		return v, false
	}
	v = q.vec.Get(q.head)
	q.head++
	q.maybeCompact()
	q.fp.invalidate()
	q.log.recordSeqDelete(0, 1)
	return v, true
}

// Peek returns the front element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	q.log.ensureUsable()
	if q.vec.Len() == q.head {
		return v, false
	}
	return q.vec.Get(q.head), true
}

// Values returns a copy of the queued elements, front first.
func (q *Queue[T]) Values() []T {
	q.log.ensureUsable()
	return q.tail()
}

// maybeCompact rebuilds the vector without the consumed prefix once the
// prefix dominates, keeping memory proportional to the live queue.
func (q *Queue[T]) maybeCompact() {
	if q.head < 64 || q.head <= q.vec.Len()/2 {
		return
	}
	cow.Replace(&q.vec, cow.FromSlice(q.tail()))
	q.head = 0
}

func (q *Queue[T]) tail() []T {
	if q.head == 0 {
		return q.vec.Slice()
	}
	return q.vec.Slice()[q.head:]
}

// applySeq applies one remote sequence op. Front deletions and back
// insertions — the only shapes queue usage produces — take O(1)/O(log n)
// fast paths; anything else falls back to rebuilding, which stays correct
// for arbitrary transformed operations.
func (q *Queue[T]) applySeq(op ot.Op) error {
	n := q.vec.Len() - q.head
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > n {
			return fmt.Errorf("mergeable: queue %s out of range for length %d", v, n)
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: queue %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		if v.Pos == n { // append fast path
			for _, x := range vals {
				q.vec = q.vec.AppendOwned(x)
				q.fp.fold(x)
			}
			return nil
		}
		cur := q.tail()
		out := append(cur[:v.Pos:v.Pos], append(vals, cur[v.Pos:]...)...)
		cow.Replace(&q.vec, cow.FromSlice(out))
		q.head = 0
		q.fp.invalidate()
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > n {
			return fmt.Errorf("mergeable: queue %s out of range for length %d", v, n)
		}
		q.fp.invalidate()
		if v.Pos == 0 { // front-deletion fast path
			q.head += v.N
			q.maybeCompact()
			return nil
		}
		cur := q.tail()
		out := append(cur[:v.Pos:v.Pos], cur[v.Pos+v.N:]...)
		cow.Replace(&q.vec, cow.FromSlice(out))
		q.head = 0
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= n {
			return fmt.Errorf("mergeable: queue %s out of range for length %d", v, n)
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: queue %s carries %T", v, v.Elem)
		}
		q.vec = q.vec.SetOwned(q.head+v.Pos, tv)
		q.fp.invalidate()
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a queue operation", op.Kind())
}

// CloneValue implements Mergeable. It is O(1): the persistent vector is
// shared structurally. The parent marks its tail shared and hands the
// child a capacity-clipped view (see List.CloneValue); the parent's own
// in-place append run continues undisturbed.
func (q *Queue[T]) CloneValue() Mergeable {
	q.vec.MarkShared()
	return &Queue[T]{vec: q.vec.Sealed(), head: q.head, fp: q.fp}
}

// ApplyRemote implements Mergeable.
func (q *Queue[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := q.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable. Also O(1).
func (q *Queue[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Queue[T])
	if !ok {
		return adoptErr(q, src)
	}
	s.vec.MarkShared() // shared from here on; see CloneValue
	q.vec, q.head = s.vec.Sealed(), s.head
	q.fp = s.fp
	return nil
}

// Fingerprint implements Mergeable. O(1) for push-only histories via the
// running hash; pops force a lazy rebuild.
func (q *Queue[T]) Fingerprint() uint64 {
	if !q.fp.ok {
		c := fpCache{h: fnvFoldString(fnvOffset64, "queue["), ok: true}
		for _, e := range q.tail() {
			c.fold(e)
		}
		q.fp = c
	}
	return fnvFoldByte(q.fp.h, ']')
}

// String renders the queue front-to-back.
func (q *Queue[T]) String() string {
	q.log.ensureUsable()
	return fmt.Sprintf("%v", q.Values())
}

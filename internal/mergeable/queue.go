package mergeable

import (
	"fmt"
	"strings"

	"repro/internal/ot"
)

// Queue is a mergeable FIFO queue, the structure used by the paper's
// network-simulation example (Listing 4: "MergeableQueue").
//
// Push appends to the back; PopFront removes from the front. Under the
// sequence OT algebra a pop that races another pop of the same element
// collapses into a single removal, so a queue with one consumer per queue —
// the simulation's shape — behaves exactly like a locked queue, without the
// lock.
type Queue[T any] struct {
	log   Log
	elems []T
}

// NewQueue returns a mergeable queue holding vals front-to-back.
func NewQueue[T any](vals ...T) *Queue[T] {
	q := &Queue[T]{}
	q.elems = append(q.elems, vals...)
	return q
}

// Log implements Mergeable.
func (q *Queue[T]) Log() *Log { return &q.log }

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int {
	q.log.ensureUsable()
	return len(q.elems)
}

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }

// Push appends v to the back of the queue.
func (q *Queue[T]) Push(v T) {
	q.log.ensureUsable()
	op := ot.SeqInsert{Pos: len(q.elems), Elems: []any{v}}
	q.elems = append(q.elems, v)
	q.log.Record(op)
}

// PopFront removes and returns the front element. ok is false when the
// queue is empty.
func (q *Queue[T]) PopFront() (v T, ok bool) {
	q.log.ensureUsable()
	if len(q.elems) == 0 {
		return v, false
	}
	v = q.elems[0]
	q.elems = append(q.elems[:0], q.elems[1:]...)
	q.log.Record(ot.SeqDelete{Pos: 0, N: 1})
	return v, true
}

// Peek returns the front element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	q.log.ensureUsable()
	if len(q.elems) == 0 {
		return v, false
	}
	return q.elems[0], true
}

// Values returns a copy of the queued elements, front first.
func (q *Queue[T]) Values() []T {
	q.log.ensureUsable()
	return append([]T(nil), q.elems...)
}

func (q *Queue[T]) applySeq(op ot.Op) error {
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > len(q.elems) {
			return fmt.Errorf("mergeable: queue %s out of range for length %d", v, len(q.elems))
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: queue %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		q.elems = append(q.elems[:v.Pos:v.Pos], append(vals, q.elems[v.Pos:]...)...)
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > len(q.elems) {
			return fmt.Errorf("mergeable: queue %s out of range for length %d", v, len(q.elems))
		}
		q.elems = append(q.elems[:v.Pos], q.elems[v.Pos+v.N:]...)
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= len(q.elems) {
			return fmt.Errorf("mergeable: queue %s out of range for length %d", v, len(q.elems))
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: queue %s carries %T", v, v.Elem)
		}
		q.elems[v.Pos] = tv
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a queue operation", op.Kind())
}

// CloneValue implements Mergeable.
func (q *Queue[T]) CloneValue() Mergeable {
	c := &Queue[T]{}
	c.elems = append([]T(nil), q.elems...)
	return c
}

// ApplyRemote implements Mergeable.
func (q *Queue[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := q.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (q *Queue[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Queue[T])
	if !ok {
		return adoptErr(q, src)
	}
	q.elems = append(q.elems[:0:0], s.elems...)
	return nil
}

// Fingerprint implements Mergeable.
func (q *Queue[T]) Fingerprint() uint64 {
	var sb strings.Builder
	sb.WriteString("queue[")
	for i, e := range q.elems {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v", e)
	}
	sb.WriteByte(']')
	return FingerprintString(sb.String())
}

// String renders the queue front-to-back.
func (q *Queue[T]) String() string {
	q.log.ensureUsable()
	return fmt.Sprintf("%v", q.elems)
}

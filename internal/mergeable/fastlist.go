package mergeable

import (
	"fmt"
	"strings"

	"repro/internal/cow"
	"repro/internal/ot"
)

// FastList is a mergeable list backed by a persistent (copy-on-write)
// vector: the COW counterpart of List, with O(1) CloneValue/AdoptFrom.
// Appends and overwrites take the fast path; arbitrary transformed
// insertions and deletions fall back to rebuilding. It exists for
// append-heavy structures copied on every spawn and sync — in the netsim
// ablation, the per-host processing traces.
type FastList[T any] struct {
	log Log
	vec cow.Vector[T]
}

// NewFastList returns a COW-backed mergeable list holding vals.
func NewFastList[T any](vals ...T) *FastList[T] {
	return &FastList[T]{vec: cow.New(vals...)}
}

// Log implements Mergeable.
func (l *FastList[T]) Log() *Log { return &l.log }

// Len returns the number of elements.
func (l *FastList[T]) Len() int {
	l.log.ensureUsable()
	return l.vec.Len()
}

// Get returns the element at index i.
func (l *FastList[T]) Get(i int) T {
	l.log.ensureUsable()
	return l.vec.Get(i)
}

// Values returns a copy of the list's contents.
func (l *FastList[T]) Values() []T {
	l.log.ensureUsable()
	return l.vec.Slice()
}

// Append adds vals to the end of the list.
func (l *FastList[T]) Append(vals ...T) {
	l.log.ensureUsable()
	if len(vals) == 0 {
		return
	}
	elems := make([]any, len(vals))
	for i, v := range vals {
		elems[i] = v
	}
	op := ot.SeqInsert{Pos: l.vec.Len(), Elems: elems}
	for _, v := range vals {
		l.vec = l.vec.AppendOwned(v)
	}
	l.log.Record(op)
}

// Set overwrites the element at index i.
func (l *FastList[T]) Set(i int, v T) {
	l.log.ensureUsable()
	if i < 0 || i >= l.vec.Len() {
		panic(fmt.Sprintf("mergeable: FastList.Set index %d out of range [0,%d)", i, l.vec.Len()))
	}
	l.vec = l.vec.Set(i, v)
	l.log.Record(ot.SeqSet{Pos: i, Elem: v})
}

func (l *FastList[T]) applySeq(op ot.Op) error {
	n := l.vec.Len()
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > n {
			return fmt.Errorf("mergeable: fastlist %s out of range for length %d", v, n)
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: fastlist %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		if v.Pos == n { // append fast path
			for _, x := range vals {
				l.vec = l.vec.AppendOwned(x)
			}
			return nil
		}
		cur := l.vec.Slice()
		out := append(cur[:v.Pos:v.Pos], append(vals, cur[v.Pos:]...)...)
		l.vec = cow.New(out...)
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > n {
			return fmt.Errorf("mergeable: fastlist %s out of range for length %d", v, n)
		}
		cur := l.vec.Slice()
		out := append(cur[:v.Pos:v.Pos], cur[v.Pos+v.N:]...)
		l.vec = cow.New(out...)
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= n {
			return fmt.Errorf("mergeable: fastlist %s out of range for length %d", v, n)
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: fastlist %s carries %T", v, v.Elem)
		}
		l.vec = l.vec.Set(v.Pos, tv)
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a list operation", op.Kind())
}

// CloneValue implements Mergeable in O(1).
func (l *FastList[T]) CloneValue() Mergeable {
	l.vec.SealTail() // shared from here on; AppendOwned must copy
	return &FastList[T]{vec: l.vec}
}

// ApplyRemote implements Mergeable.
func (l *FastList[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := l.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable in O(1).
func (l *FastList[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*FastList[T])
	if !ok {
		return adoptErr(l, src)
	}
	s.vec.SealTail() // shared from here on; see CloneValue
	l.vec = s.vec
	return nil
}

// Fingerprint implements Mergeable; equal contents fingerprint equal to
// List's.
func (l *FastList[T]) Fingerprint() uint64 {
	var sb strings.Builder
	sb.WriteString("list[")
	for i := 0; i < l.vec.Len(); i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v", l.vec.Get(i))
	}
	sb.WriteByte(']')
	return FingerprintString(sb.String())
}

// String renders the list like fmt does for slices.
func (l *FastList[T]) String() string {
	l.log.ensureUsable()
	return fmt.Sprintf("%v", l.Values())
}

package mergeable

import (
	"fmt"

	"repro/internal/cow"
	"repro/internal/ot"
)

// FastList is a mergeable list backed by a persistent (copy-on-write)
// vector: the COW counterpart of List, with O(1) CloneValue/AdoptFrom.
// Appends and overwrites take the fast path; arbitrary transformed
// insertions and deletions fall back to rebuilding. It exists for
// append-heavy structures copied on every spawn and sync — in the netsim
// ablation, the per-host processing traces.
type FastList[T any] struct {
	log Log
	vec cow.Vector[T]
	// fp caches the running FNV-1a state of the fingerprint rendering;
	// appends extend it incrementally, other mutations invalidate.
	fp fpCache
}

// NewFastList returns a COW-backed mergeable list holding vals.
func NewFastList[T any](vals ...T) *FastList[T] {
	return &FastList[T]{vec: cow.New(vals...)}
}

// Log implements Mergeable.
func (l *FastList[T]) Log() *Log { return &l.log }

// Len returns the number of elements.
func (l *FastList[T]) Len() int {
	l.log.ensureUsable()
	return l.vec.Len()
}

// Get returns the element at index i.
func (l *FastList[T]) Get(i int) T {
	l.log.ensureUsable()
	return l.vec.Get(i)
}

// Values returns a copy of the list's contents.
func (l *FastList[T]) Values() []T {
	l.log.ensureUsable()
	return l.vec.Slice()
}

// Append adds vals to the end of the list. Each element goes straight into
// the vector and the run-coalescing recorder: an append loop logs one
// composite SeqInsert without intermediate []any boxes.
func (l *FastList[T]) Append(vals ...T) {
	l.log.ensureUsable()
	if len(vals) == 0 {
		return
	}
	pos := l.vec.Len()
	for j, v := range vals {
		l.vec = l.vec.AppendOwned(v)
		l.fp.fold(v)
		l.log.recordSeqInsert1(pos+j, v)
	}
}

// Set overwrites the element at index i (in place when the tail is
// exclusively owned; see List.Set).
func (l *FastList[T]) Set(i int, v T) {
	l.log.ensureUsable()
	if i < 0 || i >= l.vec.Len() {
		panic(fmt.Sprintf("mergeable: FastList.Set index %d out of range [0,%d)", i, l.vec.Len()))
	}
	l.vec = l.vec.SetOwned(i, v)
	l.fp.invalidate()
	l.log.recordSeqSet(i, v)
}

func (l *FastList[T]) applySeq(op ot.Op) error {
	n := l.vec.Len()
	switch v := op.(type) {
	case ot.SeqInsert:
		if v.Pos < 0 || v.Pos > n {
			return fmt.Errorf("mergeable: fastlist %s out of range for length %d", v, n)
		}
		if v.Pos == n { // append fast path, no intermediate []T
			for _, e := range v.Elems { // validate first: an op applies atomically
				if tv, ok := e.(T); !ok {
					return fmt.Errorf("mergeable: fastlist %s carries %T, want %T", v, e, tv)
				}
			}
			for _, e := range v.Elems {
				tv := e.(T)
				l.vec = l.vec.AppendOwned(tv)
				l.fp.fold(tv)
			}
			return nil
		}
		vals := make([]T, len(v.Elems))
		for i, e := range v.Elems {
			tv, ok := e.(T)
			if !ok {
				return fmt.Errorf("mergeable: fastlist %s carries %T, want %T", v, e, tv)
			}
			vals[i] = tv
		}
		cur := l.vec.Slice()
		out := append(cur[:v.Pos:v.Pos], append(vals, cur[v.Pos:]...)...)
		cow.Replace(&l.vec, cow.FromSlice(out))
		l.fp.invalidate()
		return nil
	case ot.SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > n {
			return fmt.Errorf("mergeable: fastlist %s out of range for length %d", v, n)
		}
		l.fp.invalidate()
		if v.Pos+v.N == n { // trailing deletion fast path
			for i := 0; i < v.N; i++ {
				l.vec = l.vec.Pop()
			}
			return nil
		}
		cur := l.vec.Slice()
		out := append(cur[:v.Pos:v.Pos], cur[v.Pos+v.N:]...)
		cow.Replace(&l.vec, cow.FromSlice(out))
		return nil
	case ot.SeqSet:
		if v.Pos < 0 || v.Pos >= n {
			return fmt.Errorf("mergeable: fastlist %s out of range for length %d", v, n)
		}
		tv, ok := v.Elem.(T)
		if !ok {
			return fmt.Errorf("mergeable: fastlist %s carries %T", v, v.Elem)
		}
		l.vec = l.vec.SetOwned(v.Pos, tv)
		l.fp.invalidate()
		return nil
	}
	return fmt.Errorf("mergeable: %s is not a list operation", op.Kind())
}

// CloneValue implements Mergeable in O(1). The parent marks its tail
// shared and hands the child a capacity-clipped view (see List.CloneValue).
func (l *FastList[T]) CloneValue() Mergeable {
	l.vec.MarkShared()
	return &FastList[T]{vec: l.vec.Sealed(), fp: l.fp}
}

// ApplyRemote implements Mergeable.
func (l *FastList[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		if err := l.applySeq(op); err != nil {
			return err
		}
	}
	return nil
}

// AdoptFrom implements Mergeable in O(1).
func (l *FastList[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*FastList[T])
	if !ok {
		return adoptErr(l, src)
	}
	s.vec.MarkShared() // shared from here on; see CloneValue
	l.vec = s.vec.Sealed()
	l.fp = s.fp
	return nil
}

// Fingerprint implements Mergeable; equal contents fingerprint equal to
// List's. O(1) for append-only histories via the running hash.
func (l *FastList[T]) Fingerprint() uint64 {
	if !l.fp.ok {
		c := fpCache{h: fnvFoldString(fnvOffset64, "list["), ok: true}
		for _, e := range l.vec.Slice() {
			c.fold(e)
		}
		l.fp = c
	}
	return fnvFoldByte(l.fp.h, ']')
}

// String renders the list like fmt does for slices.
func (l *FastList[T]) String() string {
	l.log.ensureUsable()
	return fmt.Sprintf("%v", l.Values())
}

package mergeable

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ot"
)

func TestFastQueueBasics(t *testing.T) {
	q := NewFastQueue[string]()
	if !q.Empty() {
		t.Fatal("new queue should be empty")
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop of empty should report !ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek of empty should report !ok")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %v/%v", v, ok)
	}
	if v, ok := q.PopFront(); !ok || v != "a" {
		t.Fatalf("pop = %v/%v", v, ok)
	}
	if got := q.Values(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("values = %v", got)
	}
	if q.String() != "[b]" {
		t.Fatalf("String() = %q", q.String())
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

// TestFastQueueMatchesQueue drives identical random operation sequences
// through Queue and FastQueue — including merge-style remote ops — and
// demands identical observable state and fingerprints.
func TestFastQueueMatchesQueue(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slow := NewQueue[int]()
		fast := NewFastQueue[int]()
		for step := 0; step < 400; step++ {
			switch r.Intn(4) {
			case 0, 1:
				v := r.Intn(1000)
				slow.Push(v)
				fast.Push(v)
			case 2:
				v1, ok1 := slow.PopFront()
				v2, ok2 := fast.PopFront()
				if ok1 != ok2 || v1 != v2 {
					t.Logf("seed %d step %d: pop mismatch %v/%v vs %v/%v", seed, step, v1, ok1, v2, ok2)
					return false
				}
			default:
				// Remote op of a shape merging can produce.
				n := slow.Len()
				var op ot.Op
				switch {
				case n == 0 || r.Intn(2) == 0:
					op = ot.SeqInsert{Pos: n, Elems: []any{r.Intn(1000)}}
				case r.Intn(2) == 0:
					op = ot.SeqDelete{Pos: r.Intn(n), N: 1}
				default:
					op = ot.SeqSet{Pos: r.Intn(n), Elem: r.Intn(1000)}
				}
				if err := slow.ApplyRemote([]ot.Op{op}); err != nil {
					t.Logf("seed %d: slow apply: %v", seed, err)
					return false
				}
				if err := fast.ApplyRemote([]ot.Op{op}); err != nil {
					t.Logf("seed %d: fast apply: %v", seed, err)
					return false
				}
			}
			sv := append([]int{}, slow.Values()...)
			fv := append([]int{}, fast.Values()...)
			if !reflect.DeepEqual(sv, fv) {
				t.Logf("seed %d step %d: %v vs %v", seed, step, sv, fv)
				return false
			}
			if slow.Fingerprint() != fast.Fingerprint() {
				t.Logf("seed %d step %d: fingerprints differ for equal values", seed, step)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFastQueueCloneIsShared(t *testing.T) {
	q := NewFastQueue(1, 2, 3)
	c := q.CloneValue().(*FastQueue[int])
	c.Push(4)
	if q.Len() != 3 {
		t.Fatalf("clone mutation leaked: %v", q.Values())
	}
	if c.Len() != 4 {
		t.Fatalf("clone = %v", c.Values())
	}
	if len(c.Log().LocalOps()) != 1 {
		t.Fatal("clone should start with a fresh log")
	}
}

func TestFastQueueAdoptApplyErrors(t *testing.T) {
	q := NewFastQueue(1)
	if err := q.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatal("foreign adopt should fail")
	}
	src := NewFastQueue(7, 8)
	if err := q.AdoptFrom(src); err != nil || !reflect.DeepEqual(q.Values(), []int{7, 8}) {
		t.Fatalf("adopt: %v %v", err, q.Values())
	}
	for _, op := range []ot.Op{
		ot.SeqInsert{Pos: 9, Elems: []any{1}},
		ot.SeqInsert{Pos: 0, Elems: []any{"bad"}},
		ot.SeqDelete{Pos: 0, N: 9},
		ot.SeqSet{Pos: 9, Elem: 1},
		ot.SeqSet{Pos: 0, Elem: "bad"},
		ot.CounterAdd{Delta: 1},
	} {
		if err := q.ApplyRemote([]ot.Op{op}); err == nil {
			t.Errorf("apply %v should fail", op)
		}
	}
}

func TestFastQueueCompaction(t *testing.T) {
	q := NewFastQueue[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	for i := 0; i < n-10; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("pop %d = %d/%v", i, v, ok)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	// After compaction the internal vector must not retain the consumed
	// prefix; head must have been reset at least once.
	if q.head > q.vec.Len() {
		t.Fatalf("inconsistent state: head %d > vec %d", q.head, q.vec.Len())
	}
	if q.vec.Len() > 600 {
		t.Fatalf("compaction never ran: vec holds %d elements for a queue of 10", q.vec.Len())
	}
}

// TestFastQueueMergeSemantics replays the producer/consumer and
// concurrent-pop merge scenarios against the COW queue.
func TestFastQueueMergeSemantics(t *testing.T) {
	q := NewFastQueue(1, 2)
	producerM, base := spawnCopy(q)
	producer := producerM.(*FastQueue[int])
	producer.Push(3)
	if v, _ := q.PopFront(); v != 1 {
		t.Fatalf("popped %d", v)
	}
	mergeInto(t, q, producer, base)
	if got := q.Values(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("merged queue = %v", got)
	}

	q2 := NewFastQueue("x", "y")
	c1m, b1 := spawnCopy(q2)
	c2m, b2 := spawnCopy(q2)
	c1m.(*FastQueue[string]).PopFront()
	c2m.(*FastQueue[string]).PopFront()
	mergeInto(t, q2, c1m, b1)
	mergeInto(t, q2, c2m, b2)
	if got := q2.Values(); !reflect.DeepEqual(got, []string{"y"}) {
		t.Fatalf("concurrent pops should collapse: %v", got)
	}
}

package mergeable

import (
	"reflect"
	"testing"

	"repro/internal/ot"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter(10)
	c.Add(5)
	c.Inc()
	c.Add(0) // no-op, should not record
	if c.Value() != 16 {
		t.Fatalf("value = %d", c.Value())
	}
	if len(c.Log().LocalOps()) != 2 {
		t.Fatalf("ops = %v", c.Log().LocalOps())
	}
	if c.String() != "16" {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestCounterConcurrentAddsAccumulate(t *testing.T) {
	c := NewCounter(0)
	m1, b1 := spawnCopy(c)
	m2, b2 := spawnCopy(c)
	m1.(*Counter).Add(3)
	m2.(*Counter).Add(4)
	c.Add(1)
	mergeInto(t, c, m1, b1)
	mergeInto(t, c, m2, b2)
	if c.Value() != 8 {
		t.Fatalf("value = %d, want 8", c.Value())
	}
}

func TestCounterAdoptApplyErrors(t *testing.T) {
	c := NewCounter(0)
	if err := c.AdoptFrom(NewText("x")); err == nil {
		t.Fatalf("foreign adopt should fail")
	}
	if err := c.ApplyRemote([]ot.Op{ot.RegisterSet{Value: 1}}); err == nil {
		t.Fatalf("foreign op should fail")
	}
	d := NewCounter(5)
	if err := c.AdoptFrom(d); err != nil || c.Value() != 5 {
		t.Fatalf("adopt: %v, value %d", err, c.Value())
	}
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatalf("equal counters must share fingerprints")
	}
}

func TestRegisterBasics(t *testing.T) {
	r := NewRegister("initial")
	r.Set("next")
	if r.Get() != "next" {
		t.Fatalf("get = %q", r.Get())
	}
	if len(r.Log().LocalOps()) != 1 {
		t.Fatalf("ops = %v", r.Log().LocalOps())
	}
}

// TestRegisterEarlierMergeWins pins the deterministic conflict resolution:
// the first-merged child's write survives a later conflicting write.
func TestRegisterEarlierMergeWins(t *testing.T) {
	r := NewRegister(0)
	m1, b1 := spawnCopy(r)
	m2, b2 := spawnCopy(r)
	m1.(*Register[int]).Set(1)
	m2.(*Register[int]).Set(2)
	mergeInto(t, r, m1, b1)
	mergeInto(t, r, m2, b2)
	if r.Get() != 1 {
		t.Fatalf("value = %d, want 1 (earlier merge wins)", r.Get())
	}
}

func TestRegisterAdoptApply(t *testing.T) {
	r := NewRegister(1)
	if err := r.ApplyRemote([]ot.Op{ot.RegisterSet{Value: 9}}); err != nil || r.Get() != 9 {
		t.Fatalf("apply remote: %v", err)
	}
	if err := r.ApplyRemote([]ot.Op{ot.RegisterSet{Value: "bad"}}); err == nil {
		t.Fatalf("wrong payload type should fail")
	}
	if err := r.ApplyRemote([]ot.Op{ot.CounterAdd{Delta: 1}}); err == nil {
		t.Fatalf("foreign op should fail")
	}
	o := NewRegister(7)
	if err := r.AdoptFrom(o); err != nil || r.Get() != 7 {
		t.Fatalf("adopt: %v", err)
	}
	if err := r.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatalf("foreign adopt should fail")
	}
	clone := r.CloneValue().(*Register[int])
	if clone.Get() != 7 || clone.Fingerprint() != r.Fingerprint() {
		t.Fatalf("clone mismatch")
	}
}

func TestMapBasics(t *testing.T) {
	m := NewMap[string, int]()
	m.Set("a", 1)
	m.Set("b", 2)
	m.Delete("a")
	m.Delete("missing") // no-op, not recorded
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if v, ok := m.Get("b"); !ok || v != 2 {
		t.Fatalf("get b = %d/%v", v, ok)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatalf("a should be deleted")
	}
	if len(m.Log().LocalOps()) != 3 {
		t.Fatalf("ops = %v", m.Log().LocalOps())
	}
	if got := m.Keys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestMapMergeDistinctKeysCommute(t *testing.T) {
	m := NewMap[string, int]()
	m.Set("base", 0)
	c1, b1 := spawnCopy(m)
	c2, b2 := spawnCopy(m)
	c1.(*Map[string, int]).Set("x", 1)
	c2.(*Map[string, int]).Set("y", 2)
	mergeInto(t, m, c1, b1)
	mergeInto(t, m, c2, b2)
	if got := m.Keys(); !reflect.DeepEqual(got, []string{"base", "x", "y"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestMapMergeSameKeyEarlierWins(t *testing.T) {
	m := NewMap[string, string]()
	c1, b1 := spawnCopy(m)
	c2, b2 := spawnCopy(m)
	c1.(*Map[string, string]).Set("k", "first")
	c2.(*Map[string, string]).Set("k", "second")
	mergeInto(t, m, c1, b1)
	mergeInto(t, m, c2, b2)
	if v, _ := m.Get("k"); v != "first" {
		t.Fatalf("k = %q, want first (earlier merge wins)", v)
	}
}

func TestMapApplyAdoptErrors(t *testing.T) {
	m := NewMap[string, int]()
	if err := m.ApplyRemote([]ot.Op{ot.MapSet{Key: 1, Value: 2}}); err == nil {
		t.Fatalf("wrong key type should fail")
	}
	if err := m.ApplyRemote([]ot.Op{ot.MapSet{Key: "k", Value: "v"}}); err == nil {
		t.Fatalf("wrong value type should fail")
	}
	if err := m.ApplyRemote([]ot.Op{ot.MapDelete{Key: 3.5}}); err == nil {
		t.Fatalf("wrong delete key type should fail")
	}
	if err := m.ApplyRemote([]ot.Op{ot.CounterAdd{Delta: 1}}); err == nil {
		t.Fatalf("foreign op should fail")
	}
	if err := m.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatalf("foreign adopt should fail")
	}
	src := NewMap[string, int]()
	src.Set("z", 26)
	if err := m.AdoptFrom(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get("z"); v != 26 {
		t.Fatalf("adopt missed value")
	}
	clone := m.CloneValue().(*Map[string, int])
	clone.Set("w", 1)
	if m.Len() != 1 {
		t.Fatalf("clone aliased parent")
	}
	if m.Fingerprint() != src.Fingerprint() {
		t.Fatalf("equal maps must share fingerprints")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet("a", "b")
	s.Add("c")
	s.Add("a") // idempotent, not recorded
	s.Remove("b")
	s.Remove("zz") // absent, not recorded
	if s.Len() != 2 || !s.Contains("a") || !s.Contains("c") || s.Contains("b") {
		t.Fatalf("set = %v", s.Values())
	}
	if len(s.Log().LocalOps()) != 2 {
		t.Fatalf("ops = %v", s.Log().LocalOps())
	}
	if got := s.Values(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("values = %v", got)
	}
}

func TestSetMerge(t *testing.T) {
	s := NewSet(1, 2)
	c1, b1 := spawnCopy(s)
	c2, b2 := spawnCopy(s)
	c1.(*Set[int]).Add(3)
	c2.(*Set[int]).Add(3) // same add: idempotent
	c2.(*Set[int]).Remove(1)
	mergeInto(t, s, c1, b1)
	mergeInto(t, s, c2, b2)
	if got := s.Values(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("merged set = %v", got)
	}
}

// TestSetRemoveThenReAddYieldsToEarlierRemove pins the priority rule in
// the presence of duplicate removes: identical concurrent removes are
// idempotent (kept, never annihilated — see ot.SetRemove.Transform), so
// c2's re-add still transforms against c1's earlier-merged remove and is
// absorbed. The earlier merge wins, consistently with every other
// write-write conflict.
func TestSetRemoveThenReAddYieldsToEarlierRemove(t *testing.T) {
	s := NewSet("x")
	c1, b1 := spawnCopy(s)
	c2, b2 := spawnCopy(s)
	c1.(*Set[string]).Remove("x")
	c2m := c2.(*Set[string])
	c2m.Remove("x")
	c2m.Add("x")
	mergeInto(t, s, c1, b1)
	mergeInto(t, s, c2, b2)
	if s.Contains("x") {
		t.Fatalf("earlier-merged remove should win over the re-add, set = %v", s.Values())
	}
}

// TestSetAddVsRemoveEarlierWins pins the priority rule for a direct
// add/remove conflict: the earlier-merged remove absorbs the later add.
func TestSetAddVsRemoveEarlierWins(t *testing.T) {
	s := NewSet[string]()
	c1, b1 := spawnCopy(s)
	c2, b2 := spawnCopy(s)
	c1.(*Set[string]).Add("x")
	c2.(*Set[string]).Add("x") // idempotent with c1's add: survives either way
	mergeInto(t, s, c1, b1)
	mergeInto(t, s, c2, b2)
	if !s.Contains("x") {
		t.Fatalf("concurrent adds should converge to present")
	}

	s2 := NewSet("y")
	d1, db1 := spawnCopy(s2)
	d2, db2 := spawnCopy(s2)
	d1.(*Set[string]).Remove("y")
	d2.(*Set[string]).Add("y") // no-op locally (already present), nothing recorded
	mergeInto(t, s2, d1, db1)
	mergeInto(t, s2, d2, db2)
	if s2.Contains("y") {
		t.Fatalf("remove should win over a non-recorded add, set = %v", s2.Values())
	}
}

func TestSetApplyAdoptErrors(t *testing.T) {
	s := NewSet[int]()
	if err := s.ApplyRemote([]ot.Op{ot.SetAdd{Elem: "bad"}}); err == nil {
		t.Fatalf("wrong elem type should fail")
	}
	if err := s.ApplyRemote([]ot.Op{ot.SetRemove{Elem: "bad"}}); err == nil {
		t.Fatalf("wrong remove type should fail")
	}
	if err := s.ApplyRemote([]ot.Op{ot.CounterAdd{Delta: 1}}); err == nil {
		t.Fatalf("foreign op should fail")
	}
	if err := s.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatalf("foreign adopt should fail")
	}
	src := NewSet(4, 5)
	if err := s.AdoptFrom(src); err != nil || s.Len() != 2 {
		t.Fatalf("adopt: %v", err)
	}
	clone := s.CloneValue().(*Set[int])
	clone.Add(6)
	if s.Len() != 2 {
		t.Fatalf("clone aliased parent")
	}
	if s.Fingerprint() != src.Fingerprint() {
		t.Fatalf("equal sets must share fingerprints")
	}
}

package mergeable

import (
	"testing"

	"repro/internal/ot"
)

func TestLogRecordTake(t *testing.T) {
	var l Log
	l.Record(ot.CounterAdd{Delta: 1})
	l.Record(ot.CounterAdd{Delta: 2})
	if len(l.LocalOps()) != 2 {
		t.Fatalf("local = %v", l.LocalOps())
	}
	ops := l.TakeLocal()
	if len(ops) != 2 || len(l.LocalOps()) != 0 {
		t.Fatalf("take = %v, remaining %v", ops, l.LocalOps())
	}
}

func TestLogCommitVersions(t *testing.T) {
	var l Log
	if l.CommittedLen() != 0 {
		t.Fatalf("new log version = %d", l.CommittedLen())
	}
	l.Commit([]ot.Op{ot.CounterAdd{Delta: 1}, ot.CounterAdd{Delta: 2}})
	l.Commit(nil) // no-op
	if l.CommittedLen() != 2 {
		t.Fatalf("version = %d", l.CommittedLen())
	}
	since := l.CommittedSince(1)
	if len(since) != 1 || since[0].(ot.CounterAdd).Delta != 2 {
		t.Fatalf("since(1) = %v", since)
	}
	if got := l.CommittedSince(2); len(got) != 0 {
		t.Fatalf("since(end) = %v", got)
	}
}

func TestLogTrim(t *testing.T) {
	var l Log
	for i := 1; i <= 5; i++ {
		l.Commit([]ot.Op{ot.CounterAdd{Delta: int64(i)}})
	}
	l.Trim(3)
	if l.CommittedLen() != 5 {
		t.Fatalf("trim changed version: %d", l.CommittedLen())
	}
	since := l.CommittedSince(3)
	if len(since) != 2 || since[0].(ot.CounterAdd).Delta != 4 {
		t.Fatalf("since(3) after trim = %v", since)
	}
	l.Trim(2) // trimming backwards is a no-op
	if got := l.CommittedSince(3); len(got) != 2 {
		t.Fatalf("backwards trim changed state: %v", got)
	}
	l.Trim(99) // beyond the end clamps
	if l.CommittedLen() != 5 || len(l.CommittedSince(5)) != 0 {
		t.Fatalf("over-trim broke the log")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("reading trimmed history should panic")
		}
	}()
	l.CommittedSince(1)
}

func TestLogStale(t *testing.T) {
	l := NewList(1, 2)
	l.Log().MarkStale()
	if !l.Log().Stale() {
		t.Fatalf("should be stale")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("using a stale structure should panic")
			}
		}()
		l.Append(3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("reading a stale structure should panic")
			}
		}()
		_ = l.Len()
	}()
	l.Log().ClearStale()
	l.Append(3) // usable again
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestCombineFingerprints(t *testing.T) {
	a := CombineFingerprints(1, 2, 3)
	b := CombineFingerprints(1, 2, 3)
	c := CombineFingerprints(3, 2, 1)
	if a != b {
		t.Fatalf("combine not deterministic")
	}
	if a == c {
		t.Fatalf("combine should be order sensitive")
	}
	if FingerprintBytes([]byte("x")) != FingerprintString("x") {
		t.Fatalf("byte and string fingerprints should agree")
	}
}

package mergeable

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ot"
)

// Counter is a mergeable integer counter. Increments commute, so
// concurrent additions from any number of tasks simply accumulate — the
// cheapest possible merge. The network simulation uses one to count
// processed hops.
type Counter struct {
	log   Log
	value int64
}

// NewCounter returns a counter initialized to v.
func NewCounter(v int64) *Counter { return &Counter{value: v} }

// Log implements Mergeable.
func (c *Counter) Log() *Log { return &c.log }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.log.ensureUsable()
	return c.value
}

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) {
	c.log.ensureUsable()
	if delta == 0 {
		return
	}
	c.value += delta
	c.log.Record(ot.CounterAdd{Delta: delta})
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// CloneValue implements Mergeable.
func (c *Counter) CloneValue() Mergeable { return &Counter{value: c.value} }

// ApplyRemote implements Mergeable.
func (c *Counter) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		add, ok := op.(ot.CounterAdd)
		if !ok {
			return fmt.Errorf("mergeable: %s is not a counter operation", op.Kind())
		}
		c.value += add.Delta
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (c *Counter) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Counter)
	if !ok {
		return adoptErr(c, src)
	}
	c.value = s.value
	return nil
}

// Fingerprint implements Mergeable.
func (c *Counter) Fingerprint() uint64 {
	return FingerprintString(fmt.Sprintf("counter:%d", c.value))
}

// String renders the counter value.
func (c *Counter) String() string {
	c.log.ensureUsable()
	return fmt.Sprintf("%d", c.value)
}

// Register is a mergeable single-value cell. Concurrent assignments are
// resolved deterministically: the earlier-merged side wins. The network
// simulation uses one as its stop flag.
type Register[T any] struct {
	log   Log
	value T
}

// NewRegister returns a register initialized to v.
func NewRegister[T any](v T) *Register[T] { return &Register[T]{value: v} }

// Log implements Mergeable.
func (r *Register[T]) Log() *Log { return &r.log }

// Get returns the current value.
func (r *Register[T]) Get() T {
	r.log.ensureUsable()
	return r.value
}

// Set assigns v.
func (r *Register[T]) Set(v T) {
	r.log.ensureUsable()
	r.value = v
	r.log.Record(ot.RegisterSet{Value: v})
}

// CloneValue implements Mergeable.
func (r *Register[T]) CloneValue() Mergeable { return &Register[T]{value: r.value} }

// ApplyRemote implements Mergeable.
func (r *Register[T]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		set, ok := op.(ot.RegisterSet)
		if !ok {
			return fmt.Errorf("mergeable: %s is not a register operation", op.Kind())
		}
		v, ok := set.Value.(T)
		if !ok {
			return fmt.Errorf("mergeable: register %s carries %T", set, set.Value)
		}
		r.value = v
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (r *Register[T]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Register[T])
	if !ok {
		return adoptErr(r, src)
	}
	r.value = s.value
	return nil
}

// Fingerprint implements Mergeable.
func (r *Register[T]) Fingerprint() uint64 {
	return FingerprintString(fmt.Sprintf("register:%v", r.value))
}

// Map is a mergeable key-value map. Writes to distinct keys commute;
// concurrent writes to the same key are resolved deterministically in
// favor of the earlier-merged side.
type Map[K comparable, V any] struct {
	log Log
	m   map[K]V
}

// NewMap returns an empty mergeable map.
func NewMap[K comparable, V any]() *Map[K, V] {
	return &Map[K, V]{m: make(map[K]V)}
}

// Log implements Mergeable.
func (m *Map[K, V]) Log() *Log { return &m.log }

// Len returns the number of entries.
func (m *Map[K, V]) Len() int {
	m.log.ensureUsable()
	return len(m.m)
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	m.log.ensureUsable()
	v, ok := m.m[k]
	return v, ok
}

// Set stores v under k.
func (m *Map[K, V]) Set(k K, v V) {
	m.log.ensureUsable()
	m.m[k] = v
	m.log.Record(ot.MapSet{Key: k, Value: v})
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	m.log.ensureUsable()
	if _, ok := m.m[k]; !ok {
		return
	}
	delete(m.m, k)
	m.log.Record(ot.MapDelete{Key: k})
}

// Keys returns the keys in deterministic (rendered) order.
func (m *Map[K, V]) Keys() []K {
	m.log.ensureUsable()
	keys := make([]K, 0, len(m.m))
	for k := range m.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprintf("%v", keys[i]) < fmt.Sprintf("%v", keys[j])
	})
	return keys
}

// CloneValue implements Mergeable.
func (m *Map[K, V]) CloneValue() Mergeable {
	c := NewMap[K, V]()
	for k, v := range m.m {
		c.m[k] = v
	}
	return c
}

// ApplyRemote implements Mergeable.
func (m *Map[K, V]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		switch v := op.(type) {
		case ot.MapSet:
			k, ok := v.Key.(K)
			if !ok {
				return fmt.Errorf("mergeable: map %s carries key %T", v, v.Key)
			}
			val, ok := v.Value.(V)
			if !ok {
				return fmt.Errorf("mergeable: map %s carries value %T", v, v.Value)
			}
			m.m[k] = val
		case ot.MapDelete:
			k, ok := v.Key.(K)
			if !ok {
				return fmt.Errorf("mergeable: map %s carries key %T", v, v.Key)
			}
			delete(m.m, k)
		default:
			return fmt.Errorf("mergeable: %s is not a map operation", op.Kind())
		}
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (m *Map[K, V]) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Map[K, V])
	if !ok {
		return adoptErr(m, src)
	}
	m.m = make(map[K]V, len(s.m))
	for k, v := range s.m {
		m.m[k] = v
	}
	return nil
}

// Fingerprint implements Mergeable.
func (m *Map[K, V]) Fingerprint() uint64 {
	var sb strings.Builder
	sb.WriteString("map{")
	for _, k := range m.keysForRender() {
		fmt.Fprintf(&sb, "%v=%v;", k, m.m[k])
	}
	sb.WriteByte('}')
	return FingerprintString(sb.String())
}

func (m *Map[K, V]) keysForRender() []K {
	keys := make([]K, 0, len(m.m))
	for k := range m.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprintf("%v", keys[i]) < fmt.Sprintf("%v", keys[j])
	})
	return keys
}

// Set is a mergeable mathematical set. Concurrent adds of the same element
// are idempotent; an add racing a remove of the same element is resolved in
// favor of the earlier-merged side.
type Set[K comparable] struct {
	log Log
	m   map[K]bool
}

// NewSet returns a mergeable set holding vals.
func NewSet[K comparable](vals ...K) *Set[K] {
	s := &Set[K]{m: make(map[K]bool, len(vals))}
	for _, v := range vals {
		s.m[v] = true
	}
	return s
}

// Log implements Mergeable.
func (s *Set[K]) Log() *Log { return &s.log }

// Len returns the number of elements.
func (s *Set[K]) Len() int {
	s.log.ensureUsable()
	return len(s.m)
}

// Contains reports whether v is in the set.
func (s *Set[K]) Contains(v K) bool {
	s.log.ensureUsable()
	return s.m[v]
}

// Add inserts v.
func (s *Set[K]) Add(v K) {
	s.log.ensureUsable()
	if s.m[v] {
		return
	}
	s.m[v] = true
	s.log.Record(ot.SetAdd{Elem: v})
}

// Remove deletes v.
func (s *Set[K]) Remove(v K) {
	s.log.ensureUsable()
	if !s.m[v] {
		return
	}
	delete(s.m, v)
	s.log.Record(ot.SetRemove{Elem: v})
}

// Values returns the elements in deterministic (rendered) order.
func (s *Set[K]) Values() []K {
	s.log.ensureUsable()
	return s.valuesForRender()
}

func (s *Set[K]) valuesForRender() []K {
	vals := make([]K, 0, len(s.m))
	for v := range s.m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool {
		return fmt.Sprintf("%v", vals[i]) < fmt.Sprintf("%v", vals[j])
	})
	return vals
}

// CloneValue implements Mergeable.
func (s *Set[K]) CloneValue() Mergeable {
	c := NewSet[K]()
	for k := range s.m {
		c.m[k] = true
	}
	return c
}

// ApplyRemote implements Mergeable.
func (s *Set[K]) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		switch v := op.(type) {
		case ot.SetAdd:
			k, ok := v.Elem.(K)
			if !ok {
				return fmt.Errorf("mergeable: set %s carries %T", v, v.Elem)
			}
			s.m[k] = true
		case ot.SetRemove:
			k, ok := v.Elem.(K)
			if !ok {
				return fmt.Errorf("mergeable: set %s carries %T", v, v.Elem)
			}
			delete(s.m, k)
		default:
			return fmt.Errorf("mergeable: %s is not a set operation", op.Kind())
		}
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (s *Set[K]) AdoptFrom(src Mergeable) error {
	o, ok := src.(*Set[K])
	if !ok {
		return adoptErr(s, src)
	}
	s.m = make(map[K]bool, len(o.m))
	for k := range o.m {
		s.m[k] = true
	}
	return nil
}

// Fingerprint implements Mergeable.
func (s *Set[K]) Fingerprint() uint64 {
	var sb strings.Builder
	sb.WriteString("set{")
	for _, v := range s.valuesForRender() {
		fmt.Fprintf(&sb, "%v;", v)
	}
	sb.WriteByte('}')
	return FingerprintString(sb.String())
}

package mergeable

import (
	"fmt"
	"strings"

	"repro/internal/ot"
)

// Tree is a mergeable ordered tree: every node holds a value and an ordered
// list of children, addressed by the path of child indices from the root.
// Concurrent structural edits are reconciled with the tree OT algebra
// (sibling indices shift; edits inside a concurrently deleted subtree are
// absorbed).
type Tree struct {
	log  Log
	root *ot.TreeNode
}

// NewTree returns a mergeable tree whose root holds rootValue.
func NewTree(rootValue any) *Tree {
	return &Tree{root: &ot.TreeNode{Value: rootValue}}
}

// Log implements Mergeable.
func (t *Tree) Log() *Log { return &t.log }

// Value returns the value of the node at path (empty path = root).
func (t *Tree) Value(path ...int) (any, error) {
	t.log.ensureUsable()
	n, err := t.nodeAt(path)
	if err != nil {
		return nil, err
	}
	return n.Value, nil
}

// ChildCount returns the number of children of the node at path.
func (t *Tree) ChildCount(path ...int) (int, error) {
	t.log.ensureUsable()
	n, err := t.nodeAt(path)
	if err != nil {
		return 0, err
	}
	return len(n.Children), nil
}

func (t *Tree) nodeAt(path []int) (*ot.TreeNode, error) {
	n := t.root
	for depth, idx := range path {
		if idx < 0 || idx >= len(n.Children) {
			return nil, fmt.Errorf("mergeable: tree path %v invalid at depth %d", path, depth)
		}
		n = n.Children[idx]
	}
	return n, nil
}

// InsertNode inserts a new leaf holding value at path; the last path
// element is the sibling index among the parent's children.
func (t *Tree) InsertNode(path []int, value any) error {
	return t.InsertSubtree(path, &ot.TreeNode{Value: value})
}

// InsertSubtree inserts a copy of subtree at path.
func (t *Tree) InsertSubtree(path []int, subtree *ot.TreeNode) error {
	t.log.ensureUsable()
	op := ot.TreeInsert{Path: append([]int(nil), path...), Subtree: ot.CloneTree(subtree)}
	root, err := ot.ApplyTree(t.root, op)
	if err != nil {
		return err
	}
	t.root = root
	t.log.Record(op)
	return nil
}

// DeleteNode removes the node at path together with its subtree.
func (t *Tree) DeleteNode(path []int) error {
	t.log.ensureUsable()
	op := ot.TreeDelete{Path: append([]int(nil), path...)}
	root, err := ot.ApplyTree(t.root, op)
	if err != nil {
		return err
	}
	t.root = root
	t.log.Record(op)
	return nil
}

// SetValue overwrites the value of the node at path.
func (t *Tree) SetValue(path []int, value any) error {
	t.log.ensureUsable()
	op := ot.TreeSet{Path: append([]int(nil), path...), Value: value}
	root, err := ot.ApplyTree(t.root, op)
	if err != nil {
		return err
	}
	t.root = root
	t.log.Record(op)
	return nil
}

// Snapshot returns a deep copy of the tree's current root node, for
// serialization or inspection.
func (t *Tree) Snapshot() *ot.TreeNode {
	t.log.ensureUsable()
	return ot.CloneTree(t.root)
}

// NewTreeFromSnapshot builds a tree owning a deep copy of root.
func NewTreeFromSnapshot(root *ot.TreeNode) *Tree {
	if root == nil {
		root = &ot.TreeNode{}
	}
	return &Tree{root: ot.CloneTree(root)}
}

// CloneValue implements Mergeable.
func (t *Tree) CloneValue() Mergeable {
	return &Tree{root: ot.CloneTree(t.root)}
}

// ApplyRemote implements Mergeable.
func (t *Tree) ApplyRemote(ops []ot.Op) error {
	for _, op := range ops {
		root, err := ot.ApplyTree(t.root, op)
		if err != nil {
			return err
		}
		t.root = root
	}
	return nil
}

// AdoptFrom implements Mergeable.
func (t *Tree) AdoptFrom(src Mergeable) error {
	s, ok := src.(*Tree)
	if !ok {
		return adoptErr(t, src)
	}
	t.root = ot.CloneTree(s.root)
	return nil
}

// Fingerprint implements Mergeable.
func (t *Tree) Fingerprint() uint64 {
	var sb strings.Builder
	renderNode(&sb, t.root)
	return FingerprintString(sb.String())
}

// String renders the tree as value(child child ...).
func (t *Tree) String() string {
	t.log.ensureUsable()
	var sb strings.Builder
	renderNode(&sb, t.root)
	return sb.String()
}

func renderNode(sb *strings.Builder, n *ot.TreeNode) {
	fmt.Fprintf(sb, "%v", n.Value)
	if len(n.Children) == 0 {
		return
	}
	sb.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			sb.WriteByte(' ')
		}
		renderNode(sb, c)
	}
	sb.WriteByte(')')
}

package mergeable

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ot"
)

// mergeInto emulates a runtime merge step for tests: child was cloned from
// parent at base version; its local ops are transformed against the
// parent's committed history since base and applied to the parent.
func mergeInto(t *testing.T, parent, child Mergeable, base int) {
	t.Helper()
	parent.Log().Commit(parent.Log().TakeLocal())
	server := parent.Log().CommittedSince(base)
	transformed := ot.TransformAgainst(child.Log().TakeLocal(), server)
	if err := parent.ApplyRemote(transformed); err != nil {
		t.Fatalf("merge apply: %v", err)
	}
	parent.Log().Commit(transformed)
}

// spawnCopy emulates Spawn for tests: flush the parent's local ops and
// return a copy plus its base version.
func spawnCopy(parent Mergeable) (Mergeable, int) {
	parent.Log().Commit(parent.Log().TakeLocal())
	return parent.CloneValue(), parent.Log().CommittedLen()
}

func TestListBasics(t *testing.T) {
	l := NewList(1, 2, 3)
	if l.Len() != 3 || l.Get(0) != 1 {
		t.Fatalf("unexpected list %v", l.Values())
	}
	l.Append(4)
	l.Insert(0, 0)
	l.Set(2, 20)
	l.Delete(4)
	if got := l.Values(); !reflect.DeepEqual(got, []int{0, 1, 20, 3}) {
		t.Fatalf("got %v", got)
	}
	if len(l.Log().LocalOps()) != 4 {
		t.Fatalf("expected 4 recorded ops, got %v", l.Log().LocalOps())
	}
	if l.String() != "[0 1 20 3]" {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestListPanicsOnBadIndex(t *testing.T) {
	l := NewList(1)
	for name, f := range map[string]func(){
		"insert":  func() { l.Insert(5, 9) },
		"delete":  func() { l.Delete(3) },
		"deleteN": func() { l.DeleteN(0, 2) },
		"set":     func() { l.Set(-1, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestListing1 replays Listing 1 of the paper at the data-structure level:
// parent appends 4, child (spawned copy) appends 5, merge yields
// [1 2 3 4 5].
func TestListing1(t *testing.T) {
	list := NewList(1, 2, 3)
	childCopy, base := spawnCopy(list)
	child := childCopy.(*List[int])

	child.Append(5) // f(l) in the child task
	list.Append(4)  // parent appends concurrently

	mergeInto(t, list, child, base)
	if got := list.Values(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("merged list = %v, want [1 2 3 4 5]", got)
	}
}

func TestListMergeConflictingInserts(t *testing.T) {
	list := NewList("a", "b", "c")
	c1m, b1 := spawnCopy(list)
	c2m, b2 := spawnCopy(list)
	c1 := c1m.(*List[string])
	c2 := c2m.(*List[string])

	c1.Delete(2)      // del(2) — Figure 1's process A
	c2.Insert(0, "d") // ins(0,d) — Figure 1's process B

	mergeInto(t, list, c1, b1)
	mergeInto(t, list, c2, b2)
	if got := list.Values(); !reflect.DeepEqual(got, []string{"d", "a", "b"}) {
		t.Fatalf("merged list = %v, want [d a b] (Figure 2)", got)
	}
}

func TestListCloneIndependence(t *testing.T) {
	l := NewList(1, 2, 3)
	c := l.CloneValue().(*List[int])
	c.Append(4)
	if l.Len() != 3 {
		t.Fatalf("clone mutation leaked into parent: %v", l.Values())
	}
	if len(c.Log().LocalOps()) != 1 {
		t.Fatalf("clone should start with empty log")
	}
}

func TestListAdoptFrom(t *testing.T) {
	l := NewList(1, 2)
	src := NewList(7, 8, 9)
	if err := l.AdoptFrom(src); err != nil {
		t.Fatal(err)
	}
	src.Set(0, 100)
	if got := l.Values(); !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Fatalf("adopt failed or aliased: %v", got)
	}
	if err := l.AdoptFrom(NewText("x")); err == nil {
		t.Fatalf("adopting foreign type should fail")
	}
}

func TestListApplyRemoteErrors(t *testing.T) {
	l := NewList(1, 2)
	if err := l.ApplyRemote([]ot.Op{ot.SeqInsert{Pos: 9, Elems: []any{3}}}); err == nil {
		t.Fatalf("out-of-range remote op should fail")
	}
	if err := l.ApplyRemote([]ot.Op{ot.SeqInsert{Pos: 0, Elems: []any{"wrong type"}}}); err == nil {
		t.Fatalf("wrong payload type should fail")
	}
	if err := l.ApplyRemote([]ot.Op{ot.SeqSet{Pos: 0, Elem: "bad"}}); err == nil {
		t.Fatalf("wrong set payload type should fail")
	}
	if err := l.ApplyRemote([]ot.Op{ot.CounterAdd{Delta: 1}}); err == nil {
		t.Fatalf("foreign op family should fail")
	}
	if err := l.ApplyRemote([]ot.Op{ot.SeqDelete{Pos: 0, N: 5}}); err == nil {
		t.Fatalf("out-of-range delete should fail")
	}
}

func TestListFingerprint(t *testing.T) {
	a := NewList(1, 2, 3)
	b := NewList(1, 2, 3)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal lists must have equal fingerprints")
	}
	b.Append(4)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("different lists should differ in fingerprint")
	}
}

func TestQueueBasics(t *testing.T) {
	q := NewQueue[string]()
	if !q.Empty() {
		t.Fatalf("new queue should be empty")
	}
	if _, ok := q.PopFront(); ok {
		t.Fatalf("pop of empty queue should report !ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatalf("peek of empty queue should report !ok")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %v/%v", v, ok)
	}
	v, ok := q.PopFront()
	if !ok || v != "a" {
		t.Fatalf("pop = %v/%v", v, ok)
	}
	if got := q.Values(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("values = %v", got)
	}
	if q.String() != "[b]" {
		t.Fatalf("String() = %q", q.String())
	}
}

// TestQueueProducerConsumerMerge exercises the simulation pattern: one
// child pushes into a queue while the owner pops from it.
func TestQueueProducerConsumerMerge(t *testing.T) {
	q := NewQueue(1, 2)
	producerM, base := spawnCopy(q)
	producer := producerM.(*Queue[int])

	producer.Push(3)
	producer.Push(4)
	if v, _ := q.PopFront(); v != 1 { // owner concurrently consumes
		t.Fatalf("popped %d", v)
	}

	mergeInto(t, q, producer, base)
	if got := q.Values(); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("merged queue = %v, want [2 3 4]", got)
	}
}

// TestQueueConcurrentPopCollapses documents the at-least-once semantics of
// racing pops: two copies popping the same element merge into a single
// removal.
func TestQueueConcurrentPopCollapses(t *testing.T) {
	q := NewQueue("x", "y")
	c1m, b1 := spawnCopy(q)
	c2m, b2 := spawnCopy(q)
	c1 := c1m.(*Queue[string])
	c2 := c2m.(*Queue[string])

	v1, _ := c1.PopFront()
	v2, _ := c2.PopFront()
	if v1 != "x" || v2 != "x" {
		t.Fatalf("both copies should see the same front: %q %q", v1, v2)
	}
	mergeInto(t, q, c1, b1)
	mergeInto(t, q, c2, b2)
	if got := q.Values(); !reflect.DeepEqual(got, []string{"y"}) {
		t.Fatalf("merged queue = %v, want [y]: concurrent pops must collapse", got)
	}
}

func TestQueueAdoptAndClone(t *testing.T) {
	q := NewQueue(1, 2, 3)
	c := q.CloneValue().(*Queue[int])
	c.Push(4)
	if q.Len() != 3 {
		t.Fatalf("clone aliased parent")
	}
	other := NewQueue(9)
	if err := other.AdoptFrom(q); err != nil {
		t.Fatal(err)
	}
	if got := other.Values(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("adopt = %v", got)
	}
	if err := other.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatalf("adopting foreign type should fail")
	}
	if err := other.ApplyRemote([]ot.Op{ot.RegisterSet{Value: 1}}); err == nil {
		t.Fatalf("foreign op family should fail")
	}
	if other.Fingerprint() != q.Fingerprint() {
		t.Fatalf("equal queues must share fingerprints")
	}
}

// TestListMergePropertyReplay drives random mutations on parent and child
// copies and checks the runtime invariant: replaying the parent's committed
// history from the spawn-time state reproduces the merged state.
func TestListMergePropertyReplay(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		parent := NewList[int]()
		for i := 0; i < r.Intn(6); i++ {
			parent.Append(r.Intn(100))
		}
		parent.Log().Commit(parent.Log().TakeLocal())
		baseVals := parent.Values()
		baseVer := parent.Log().CommittedLen()

		childM, base := spawnCopy(parent)
		child := childM.(*List[int])

		mutate := func(l *List[int]) {
			for i := 0; i < r.Intn(5); i++ {
				switch n := l.Len(); {
				case n == 0 || r.Intn(3) == 0:
					l.Insert(r.Intn(n+1), r.Intn(100))
				case r.Intn(2) == 0:
					l.Delete(r.Intn(n))
				default:
					l.Set(r.Intn(n), r.Intn(100))
				}
			}
		}
		mutate(parent)
		mutate(child)
		mergeInto(t, parent, child, base)

		// Replay committed history since the pre-spawn version.
		replay := NewList[int](baseVals...)
		if err := replay.ApplyRemote(parent.Log().CommittedSince(baseVer)); err != nil {
			t.Logf("seed %d: replay error: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(replay.Values(), parent.Values()) {
			t.Logf("seed %d: replay=%v merged=%v", seed, replay.Values(), parent.Values())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

package mergeable

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ot"
)

func TestFastListBasics(t *testing.T) {
	l := NewFastList(1, 2, 3)
	l.Append(4, 5)
	l.Set(0, 10)
	if got := l.Values(); !reflect.DeepEqual(got, []int{10, 2, 3, 4, 5}) {
		t.Fatalf("values = %v", got)
	}
	if l.Len() != 5 || l.Get(4) != 5 {
		t.Fatalf("len/get wrong")
	}
	if l.String() != "[10 2 3 4 5]" {
		t.Fatalf("String() = %q", l.String())
	}
	l.Append() // no-op
	if len(l.Log().LocalOps()) != 2 {
		t.Fatalf("ops = %v", l.Log().LocalOps())
	}
}

func TestFastListSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewFastList(1).Set(5, 1)
}

// TestFastListMatchesList drives identical operations through List and
// FastList and demands identical state and fingerprints.
func TestFastListMatchesList(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slow := NewList[int]()
		fast := NewFastList[int]()
		for step := 0; step < 250; step++ {
			n := slow.Len()
			switch {
			case n == 0 || r.Intn(3) == 0:
				v := r.Intn(1000)
				slow.Append(v)
				fast.Append(v)
			case r.Intn(2) == 0:
				i, v := r.Intn(n), r.Intn(1000)
				slow.Set(i, v)
				fast.Set(i, v)
			default:
				// Remote ops of every shape, including mid-list edits that
				// exercise FastList's rebuild fallback.
				var op ot.Op
				switch r.Intn(3) {
				case 0:
					op = ot.SeqInsert{Pos: r.Intn(n + 1), Elems: []any{r.Intn(1000)}}
				case 1:
					pos := r.Intn(n)
					op = ot.SeqDelete{Pos: pos, N: 1 + r.Intn(n-pos)}
				default:
					op = ot.SeqSet{Pos: r.Intn(n), Elem: r.Intn(1000)}
				}
				if err := slow.ApplyRemote([]ot.Op{op}); err != nil {
					return false
				}
				if err := fast.ApplyRemote([]ot.Op{op}); err != nil {
					return false
				}
			}
			sv := append([]int{}, slow.Values()...)
			fv := append([]int{}, fast.Values()...)
			if !reflect.DeepEqual(sv, fv) {
				t.Logf("seed %d step %d: %v vs %v", seed, step, sv, fv)
				return false
			}
			if slow.Fingerprint() != fast.Fingerprint() {
				t.Logf("seed %d step %d: fingerprint mismatch", seed, step)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFastListCloneAdopt(t *testing.T) {
	l := NewFastList(1, 2)
	c := l.CloneValue().(*FastList[int])
	c.Append(3)
	if l.Len() != 2 {
		t.Fatal("clone leaked")
	}
	dst := NewFastList[int]()
	if err := dst.AdoptFrom(l); err != nil || dst.Len() != 2 {
		t.Fatalf("adopt: %v", err)
	}
	if err := dst.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatal("foreign adopt should fail")
	}
	if dst.Fingerprint() != l.Fingerprint() {
		t.Fatal("fingerprints should match")
	}
	for _, op := range []ot.Op{
		ot.SeqInsert{Pos: 9, Elems: []any{1}},
		ot.SeqInsert{Pos: 0, Elems: []any{"bad"}},
		ot.SeqDelete{Pos: 0, N: 9},
		ot.SeqSet{Pos: 9, Elem: 1},
		ot.SeqSet{Pos: 0, Elem: "bad"},
		ot.CounterAdd{Delta: 1},
	} {
		if err := dst.ApplyRemote([]ot.Op{op}); err == nil {
			t.Errorf("apply %v should fail", op)
		}
	}
}

// TestFastListMergeWithRuntimeShapes replays the Listing 1 merge against
// the COW list.
func TestFastListMergeWithRuntimeShapes(t *testing.T) {
	list := NewFastList(1, 2, 3)
	childM, base := spawnCopy(list)
	child := childM.(*FastList[int])
	child.Append(5)
	list.Append(4)
	mergeInto(t, list, child, base)
	if got := list.Values(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("merged = %v", got)
	}
}

package mergeable

import (
	"testing"

	"repro/internal/ot"
)

func TestTextBasics(t *testing.T) {
	txt := NewText("hello")
	txt.Append(" world")
	txt.Delete(0, 1)
	txt.Insert(0, "H")
	if txt.String() != "Hello world" {
		t.Fatalf("got %q", txt.String())
	}
	if txt.Len() != 11 {
		t.Fatalf("len = %d", txt.Len())
	}
	if len(txt.Log().LocalOps()) != 3 {
		t.Fatalf("ops = %v", txt.Log().LocalOps())
	}
	txt.Insert(0, "") // no-op
	txt.Delete(0, 0)  // no-op
	if len(txt.Log().LocalOps()) != 3 {
		t.Fatalf("no-ops should not be recorded")
	}
}

func TestTextPanicsOnBadRange(t *testing.T) {
	txt := NewText("ab")
	for name, f := range map[string]func(){
		"insert": func() { txt.Insert(5, "x") },
		"delete": func() { txt.Delete(1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestTextCollaborativeMerge is the collaborative-editing scenario OT was
// born for: two children edit a shared document, merges converge.
func TestTextCollaborativeMerge(t *testing.T) {
	doc := NewText("The quick fox")
	aliceM, ba := spawnCopy(doc)
	bobM, bb := spawnCopy(doc)
	alice := aliceM.(*Text)
	bob := bobM.(*Text)

	alice.Insert(9, " brown") // "The quick brown fox"
	bob.Append(" jumps")      // "The quick fox jumps"

	mergeInto(t, doc, alice, ba)
	mergeInto(t, doc, bob, bb)
	if doc.String() != "The quick brown fox jumps" {
		t.Fatalf("merged doc = %q", doc.String())
	}
}

func TestTextAdoptApplyErrors(t *testing.T) {
	txt := NewText("ab")
	if err := txt.ApplyRemote([]ot.Op{ot.TextInsert{Pos: 9, Text: "x"}}); err == nil {
		t.Fatalf("out-of-range remote op should fail")
	}
	if err := txt.ApplyRemote([]ot.Op{ot.CounterAdd{Delta: 1}}); err == nil {
		t.Fatalf("foreign op should fail")
	}
	if err := txt.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatalf("foreign adopt should fail")
	}
	src := NewText("source")
	if err := txt.AdoptFrom(src); err != nil || txt.String() != "source" {
		t.Fatalf("adopt: %v %q", err, txt.String())
	}
	clone := txt.CloneValue().(*Text)
	clone.Append("!")
	if txt.String() != "source" {
		t.Fatalf("clone aliased parent")
	}
	if txt.Fingerprint() != src.Fingerprint() {
		t.Fatalf("equal texts must share fingerprints")
	}
}

func buildTestTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree("root")
	if err := tr.InsertNode([]int{0}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertNode([]int{1}, "b"); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertNode([]int{0, 0}, "a0"); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeBasics(t *testing.T) {
	tr := buildTestTree(t)
	if tr.String() != "root(a(a0) b)" {
		t.Fatalf("tree = %s", tr.String())
	}
	if v, err := tr.Value(0, 0); err != nil || v != "a0" {
		t.Fatalf("value = %v/%v", v, err)
	}
	if n, err := tr.ChildCount(); err != nil || n != 2 {
		t.Fatalf("children = %d/%v", n, err)
	}
	if err := tr.SetValue([]int{1}, "B"); err != nil {
		t.Fatal(err)
	}
	if err := tr.DeleteNode([]int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if tr.String() != "root(a B)" {
		t.Fatalf("tree = %s", tr.String())
	}
	if len(tr.Log().LocalOps()) != 5 {
		t.Fatalf("ops = %v", tr.Log().LocalOps())
	}
}

func TestTreeErrors(t *testing.T) {
	tr := buildTestTree(t)
	if err := tr.InsertNode([]int{9, 0}, "x"); err == nil {
		t.Fatalf("bad path should fail")
	}
	if err := tr.DeleteNode([]int{9}); err == nil {
		t.Fatalf("bad delete should fail")
	}
	if err := tr.SetValue([]int{0, 9}, "x"); err == nil {
		t.Fatalf("bad set should fail")
	}
	if _, err := tr.Value(7); err == nil {
		t.Fatalf("bad value path should fail")
	}
	if _, err := tr.ChildCount(7); err == nil {
		t.Fatalf("bad childcount path should fail")
	}
}

func TestTreeMergeSiblingShift(t *testing.T) {
	tr := buildTestTree(t)
	c1m, b1 := spawnCopy(tr)
	c2m, b2 := spawnCopy(tr)
	c1 := c1m.(*Tree)
	c2 := c2m.(*Tree)

	if err := c1.InsertNode([]int{0}, "new"); err != nil { // prepend sibling
		t.Fatal(err)
	}
	if err := c2.SetValue([]int{1}, "B"); err != nil { // rename node b
		t.Fatal(err)
	}
	mergeInto(t, tr, c1, b1)
	mergeInto(t, tr, c2, b2)
	if tr.String() != "root(new a(a0) B)" {
		t.Fatalf("merged tree = %s", tr.String())
	}
}

func TestTreeMergeDeleteAbsorbsInnerEdit(t *testing.T) {
	tr := buildTestTree(t)
	c1m, b1 := spawnCopy(tr)
	c2m, b2 := spawnCopy(tr)
	c1 := c1m.(*Tree)
	c2 := c2m.(*Tree)

	if err := c1.DeleteNode([]int{0}); err != nil {
		t.Fatal(err)
	}
	if err := c2.SetValue([]int{0, 0}, "edited"); err != nil {
		t.Fatal(err)
	}
	mergeInto(t, tr, c1, b1)
	mergeInto(t, tr, c2, b2)
	if tr.String() != "root(b)" {
		t.Fatalf("merged tree = %s", tr.String())
	}
}

func TestTreeCloneAdopt(t *testing.T) {
	tr := buildTestTree(t)
	clone := tr.CloneValue().(*Tree)
	if err := clone.SetValue(nil, "other"); err != nil {
		t.Fatal(err)
	}
	if tr.String() != "root(a(a0) b)" {
		t.Fatalf("clone aliased parent: %s", tr.String())
	}
	dst := NewTree("x")
	if err := dst.AdoptFrom(tr); err != nil {
		t.Fatal(err)
	}
	if dst.String() != tr.String() || dst.Fingerprint() != tr.Fingerprint() {
		t.Fatalf("adopt mismatch: %s vs %s", dst.String(), tr.String())
	}
	if err := dst.AdoptFrom(NewCounter(0)); err == nil {
		t.Fatalf("foreign adopt should fail")
	}
	if err := dst.ApplyRemote([]ot.Op{ot.CounterAdd{Delta: 1}}); err == nil {
		t.Fatalf("foreign op should fail")
	}
}

// Package mergeable provides the library of mergeable data structures that
// Spawn & Merge tasks operate on: lists, queues, text buffers, maps, sets,
// counters, registers and trees.
//
// Every structure records the operations applied to it in an operation log
// (the operation-centric view of Section II.A of the paper). The task
// runtime uses the log to merge divergent copies with operational
// transformation: a child's local operations are transformed against the
// suffix of the parent's committed history the child has not seen, then
// applied to the parent and appended to that history.
//
// Structures are task-local by design — a task mutates only its own copies,
// so no internal locking exists or is needed. Sharing a structure between
// goroutines outside the Spawn/Merge protocol is a programming error.
//
// Programmers can add custom mergeable structures by implementing the
// Mergeable interface, exactly as the paper intends ("programmers can use
// an interface to implement new mergeable data structures").
package mergeable

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/ot"
)

// Mergeable is the contract between a data structure and the Spawn & Merge
// runtime. All provided structures implement it; user-defined structures
// may too.
//
// A structure must route every local mutation through its Log (apply the
// operation to its own state, then Log().Record(op)) and must be able to
// apply *remote* (already transformed) operations without re-recording
// them.
type Mergeable interface {
	// Log exposes the structure's operation log. The runtime uses it to
	// take local operations at merge time, to commit transformed
	// operations to the shared history, and to mark copies stale.
	Log() *Log

	// CloneValue returns a deep copy of the structure's current value with
	// a fresh, empty log. The runtime calls it on Spawn, Sync and when
	// building merge previews for condition functions.
	CloneValue() Mergeable

	// ApplyRemote applies already-transformed operations to the value
	// without recording them as local operations. The runtime calls it
	// with a child's transformed operations at merge time.
	ApplyRemote(ops []ot.Op) error

	// AdoptFrom replaces this structure's value with a deep copy of src,
	// which must have the same concrete type. The runtime uses it to
	// refresh a child's copies after Sync.
	AdoptFrom(src Mergeable) error

	// Fingerprint returns a hash of the current value. Equal values yield
	// equal fingerprints; the determinism checker and tests rely on it.
	Fingerprint() uint64
}

// Log is the operation log embedded in every mergeable structure. It keeps
//
//   - the committed history: operations already merged into this copy, in
//     the deterministic merge order. Children remember the history length
//     at copy time (their base version) and are later transformed against
//     everything committed after it.
//   - the local operations: mutations applied by the owning task since the
//     last flush, not yet part of any shared history.
//
// The committed history can be trimmed once no live child's base precedes
// a prefix; offset keeps version numbers stable across trims.
// Log is two words wide: the actual state lives behind a pointer and is
// allocated on first use. CloneValue runs once per structure per spawn —
// the hottest allocation site in fan-out-heavy programs — and every clone
// starts with an empty log, so embedding the full state inline would make
// each clone carry (and the allocator zero) five words of dead log. With
// the lazy handle a clone's log costs one nil pointer, and a child that
// never mutates a structure never allocates log state at all.
type Log struct {
	s *logState
	// off preserves the committed version number across Recycle: a
	// recycled log seeds its next state at the version it reached, so
	// CommittedLen stays monotone over the structure's whole lifetime
	// exactly as if the state had never been pooled.
	off int
}

// bufOwner values: which slice currently uses logState.buf as backing.
const (
	bufFree int8 = iota
	bufLocal
	bufCommitted
)

// runKind values: the kind of the pending, not-yet-sealed operation run.
const (
	runNone int8 = iota
	runIns
	runDel
	runSet
)

type logState struct {
	committed []ot.Op
	offset    int
	local     []ot.Op
	stale     bool
	// pinVers/pinCnts are a small refcounted multiset of pinned versions:
	// each live child of the owning task pins its base version at spawn or
	// clone adoption and releases it at merge/abort/reap. History below the
	// minimum pinned version (the watermark) can never be consulted by any
	// future transform, so the GC may drop it. Parallel slices, unordered;
	// fan-outs pin a handful of versions, so linear scans beat any map.
	pinVers []int
	pinCnts []int
	// trimMark is transient scratch for the runtime's trim pass: seeded at
	// the watermark, lowered by upward-propagation floors, then consumed by
	// TrimToMark. Meaningless between passes.
	trimMark int
	// tracker is an opaque owner token for the runtime: the task currently
	// holding this structure in its history-tracking set. It lets the
	// per-spawn tracking pass skip structures already tracked with one
	// pointer comparison instead of a map insert. Owned by the tracking
	// task's goroutine, like the rest of the log.
	tracker any
	// buf backs short op runs without a heap allocation: local borrows it
	// for the first recorded batch, and FlushLocal hands the borrow to
	// committed when the history is still empty (the first flush, i.e.
	// every structure's first spawn). bufOwner says who holds the borrow;
	// a slice that outgrows the buffer silently migrates to the heap and
	// the owner mark just goes stale until the next reset point.
	bufOwner int8

	// Pending run: the sequence-structure mutators record appends and pops
	// through recordSeqInsert1/recordSeqDelete, which coalesce contiguous
	// same-kind operations here and only seal them into one composite
	// operation when the run breaks (or the log is read). An insert run
	// holds its single element in runFirst until a second arrives, so the
	// push-then-pop steady state of a queue never allocates a buffer — the
	// pop cancels the pending push in place and nothing reaches the log at
	// all. The coalesced forms are exactly the ones CompactSeq would
	// produce, whose merge-soundness the compaction property tests pin.
	runKind  int8
	runPos   int
	runN     int
	runFirst any
	runElems []any
	runSpare []any // retained backing of a fully-cancelled buffered run

	// Pending set run: a burst of SeqSets keeps only the last write per
	// position (runSetPos/runSetElems are parallel, first-write order).
	// Sets never shift positions, so they commute with each other, and an
	// overwritten set inside one unflushed batch is observable by no
	// concurrent operation — the same shielding argument as above.
	runSetPos   []int
	runSetElems []any

	buf [8]ot.Op
}

// statePool recycles logStates: the runtime returns a structure's state at
// the moment its history becomes empty again (see Recycle), making the
// per-iteration log allocation of a long-lived root structure amortize to
// zero.
var statePool = sync.Pool{New: func() any { return new(logState) }}

// state returns the backing state, allocating it on first use.
func (l *Log) state() *logState {
	if l.s == nil {
		l.s = statePool.Get().(*logState)
		l.s.offset = l.off
	}
	return l.s
}

// Recycle returns the log's heap state to the shared pool when nothing
// lives in it anymore — no history, no locals, no pending run, no tracker,
// not stale — and detaches it from the log, which lazily reallocates on
// next use. The runtime calls it after fully trimming a root structure's
// history; it is a no-op in every other state, so callers need no
// precondition beyond owning the structure.
func (l *Log) Recycle() {
	s := l.s
	if s == nil {
		return
	}
	if len(s.committed) != 0 || len(s.local) != 0 || s.runKind != runNone ||
		s.stale || s.tracker != nil || len(s.pinVers) != 0 {
		return
	}
	l.off = s.offset
	// Keep the (reference-free) run-buffer and pin backings with the pooled
	// state: the next owner would otherwise reallocate them on its first
	// burst or fan-out.
	spare, rsp, rse := s.runSpare, s.runSetPos[:0], s.runSetElems[:0]
	pv, pc := s.pinVers[:0], s.pinCnts[:0]
	*s = logState{}
	s.runSpare, s.runSetPos, s.runSetElems = spare, rsp, rse
	s.pinVers, s.pinCnts = pv, pc
	l.s = nil
	statePool.Put(s)
}

// Tracker returns the opaque owner token set by SetTracker.
func (l *Log) Tracker() any {
	if l.s == nil {
		return nil
	}
	return l.s.tracker
}

// SetTracker records an opaque owner token. The runtime maintains the
// invariant that a non-nil token means the structure is present in that
// owner's tracking set.
func (l *Log) SetTracker(v any) {
	if v == nil && l.s == nil {
		return
	}
	l.state().tracker = v
}

// Record appends a local operation. Structures call it from every mutator.
// Any pending run is sealed first, preserving sequential order; the generic
// path never coalesces, so callers that need exact op streams (replay,
// journaling) keep them.
func (l *Log) Record(op ot.Op) {
	s := l.state()
	if s.stale {
		l.ensureUsable()
	}
	if s.runKind != runNone {
		s.sealRun()
	}
	s.appendLocal(op)
}

// appendLocal appends to the local slice, borrowing the inline buffer for
// the first batch.
func (s *logState) appendLocal(op ot.Op) {
	if s.local == nil {
		if s.bufOwner == bufFree {
			s.bufOwner = bufLocal
			s.local = s.buf[:0]
		} else {
			// Skip append's 1→2→4 growth ramp: a structure that records one
			// operation almost always records a few more before the next
			// flush.
			s.local = make([]ot.Op, 0, 8)
		}
	}
	s.local = append(s.local, op)
}

// sealRun flushes the pending run into the local slice as one composite
// operation and clears the run.
func (s *logState) sealRun() {
	switch s.runKind {
	case runIns:
		var elems []any
		if s.runElems != nil {
			elems = s.runElems
			s.runElems = nil
		} else {
			elems = internElems1(s.runFirst)
			s.runFirst = nil
		}
		s.appendLocal(ot.SeqInsert{Pos: s.runPos, Elems: elems})
	case runDel:
		s.appendLocal(ot.SeqDelete{Pos: s.runPos, N: s.runN})
	case runSet:
		for i, p := range s.runSetPos {
			s.appendLocal(ot.SeqSet{Pos: p, Elem: s.runSetElems[i]})
			s.runSetElems[i] = nil
		}
		s.runSetPos = s.runSetPos[:0]
		s.runSetElems = s.runSetElems[:0]
	}
	s.runKind = runNone
}

// runExtend adds one element to a pending insert run, migrating from the
// single-element fast representation to the buffered one on the second
// element.
func (s *logState) runExtend(elem any) {
	if s.runElems == nil {
		if s.runSpare != nil {
			s.runElems = append(s.runSpare, s.runFirst)
			s.runSpare = nil
		} else {
			s.runElems = append(make([]any, 0, 8), s.runFirst)
		}
		s.runFirst = nil
	}
	s.runElems = append(s.runElems, elem)
	s.runN++
}

// recordSeqInsert1 records the insertion of one element at pos, coalescing
// contiguous ascending insertions (appends, typing runs) into a single
// pending SeqInsert.
func (l *Log) recordSeqInsert1(pos int, elem any) {
	s := l.state()
	if s.stale {
		l.ensureUsable()
	}
	if s.runKind == runIns && pos == s.runPos+s.runN {
		s.runExtend(elem)
		return
	}
	if s.runKind != runNone {
		s.sealRun()
	}
	s.runKind = runIns
	s.runPos = pos
	s.runN = 1
	s.runFirst = elem
}

// recordSeqDelete records the deletion of n elements at pos. Same-position
// deletions (queue pops, block drains) coalesce into one pending SeqDelete;
// a deletion falling entirely inside a pending insert run cancels the
// inserted elements in place — those elements were never observable by any
// concurrent operation (the same argument as the CompactSeq insert/delete
// rule), so a push-then-pop steady state records nothing at all.
func (l *Log) recordSeqDelete(pos, n int) {
	s := l.state()
	if s.stale {
		l.ensureUsable()
	}
	switch {
	case s.runKind == runIns && pos >= s.runPos && pos+n <= s.runPos+s.runN:
		if s.runElems == nil { // runN == 1, so n == 1: whole-run cancel
			s.runFirst = nil
			s.runKind = runNone
			return
		}
		k := pos - s.runPos
		s.runElems = append(s.runElems[:k], s.runElems[k+n:]...)
		s.runN -= n
		if s.runN == 0 {
			s.runSpare = s.runElems[:0]
			s.runElems = nil
			s.runKind = runNone
		}
		return
	case s.runKind == runDel && pos == s.runPos:
		s.runN += n
		return
	}
	if s.runKind != runNone {
		s.sealRun()
	}
	s.runKind = runDel
	s.runPos = pos
	s.runN = n
}

// recordSeqSet records an element overwrite at pos. Bursts of sets — the
// read-modify-write loops merge-scaling workloads are made of — coalesce
// into one pending run holding only the last write per position: an
// overwritten set was never observable by any concurrent operation, and
// sets at distinct positions commute (they shift nothing), so the sealed
// run is merge-equivalent to the full stream. The run is bounded so the
// per-set position scan stays cache-resident; overflowing seals and
// starts over.
func (l *Log) recordSeqSet(pos int, elem any) {
	s := l.state()
	if s.stale {
		l.ensureUsable()
	}
	if s.runKind == runSet {
		for i, p := range s.runSetPos {
			if p == pos {
				s.runSetElems[i] = elem
				return
			}
		}
		if len(s.runSetPos) < 32 {
			s.runSetPos = append(s.runSetPos, pos)
			s.runSetElems = append(s.runSetElems, elem)
			return
		}
		s.sealRun()
	} else if s.runKind != runNone {
		s.sealRun()
	}
	s.runKind = runSet
	s.runSetPos = append(s.runSetPos[:0], pos)
	s.runSetElems = append(s.runSetElems[:0], elem)
}

// LocalOps returns the not-yet-committed local operations (shared slice;
// callers must not modify it). Any pending run is sealed first.
func (l *Log) LocalOps() []ot.Op {
	if l.s == nil {
		return nil
	}
	if l.s.runKind != runNone {
		l.s.sealRun()
	}
	return l.s.local
}

// TakeLocal removes and returns the local operations. The returned slice is
// the caller's to keep: when the operations sit in the log's inline buffer
// they are copied out, so later Records never overwrite them.
func (l *Log) TakeLocal() []ot.Op {
	if l.s == nil {
		return nil
	}
	s := l.s
	if s.runKind != runNone {
		s.sealRun()
	}
	ops := s.local
	s.local = nil
	if s.bufOwner == bufLocal {
		s.bufOwner = bufFree
		if len(ops) == 0 {
			return nil
		}
		ops = append([]ot.Op(nil), ops...)
	}
	return ops
}

// FlushLocal moves the local operations into the committed history. It is
// Commit(TakeLocal()) without the intermediate hand-off — the per-spawn and
// per-merge flush runs over every bound structure, most with nothing
// pending, so the empty case stays write-free.
func (l *Log) FlushLocal() {
	if l.s == nil {
		return
	}
	if l.s.runKind != runNone {
		l.s.sealRun()
	}
	if len(l.s.local) == 0 {
		return
	}
	s := l.s
	if len(s.committed) == 0 {
		// First flush: the history simply takes over the local slice (and
		// with it the inline-buffer borrow, if any) instead of copying.
		s.committed = s.local
		if s.bufOwner == bufLocal {
			s.bufOwner = bufCommitted
		}
	} else {
		s.committed = append(s.committed, s.local...)
		if s.bufOwner == bufLocal {
			s.bufOwner = bufFree
		}
	}
	s.local = nil
}

// CommittedLen returns the version number of the committed history: the
// total number of operations ever committed, including trimmed ones.
func (l *Log) CommittedLen() int {
	if l.s == nil {
		return l.off
	}
	return l.s.offset + len(l.s.committed)
}

// CommittedSince returns the committed operations from version base
// onwards. It panics if base precedes the trimmed prefix, which would mean
// the runtime trimmed history still needed by a live child.
func (l *Log) CommittedSince(base int) []ot.Op {
	if l.s == nil {
		if base != l.off {
			panic(fmt.Sprintf("mergeable: empty history at version %d cannot satisfy base %d", l.off, base))
		}
		return nil
	}
	if base < l.s.offset {
		panic(fmt.Sprintf("mergeable: history before version %d was trimmed (need base %d)", l.s.offset, base))
	}
	return l.s.committed[base-l.s.offset:]
}

// Commit appends operations to the committed history.
func (l *Log) Commit(ops []ot.Op) {
	if len(ops) > 0 {
		s := l.state()
		s.committed = append(s.committed, ops...)
	}
}

// Trim drops committed history before version min and reports how many
// operations were dropped. The runtime calls it with the minimum base
// version across live children so long-running tasks (e.g. the network
// simulation) do not accumulate unbounded history.
func (l *Log) Trim(min int) int {
	if l.s == nil || min <= l.s.offset {
		return 0
	}
	s := l.s
	if max := l.CommittedLen(); min > max {
		min = max
	}
	n := min - s.offset
	if n <= 0 {
		return 0
	}
	s.committed = append([]ot.Op(nil), s.committed[n:]...)
	s.offset = min
	if s.bufOwner == bufCommitted {
		// The copy above moved the history off the inline buffer.
		s.bufOwner = bufFree
	}
	return n
}

// Pin records a live reference to version ver of the committed history:
// trims will never drop history at or after the minimum pinned version.
// The runtime pins a child's base version at spawn (or when it adopts a
// clone) and releases it when the child is reaped. Pins are refcounted, so
// aliased data positions and sibling children sharing a base are fine.
func (l *Log) Pin(ver int) {
	s := l.state()
	for i, v := range s.pinVers {
		if v == ver {
			s.pinCnts[i]++
			return
		}
	}
	s.pinVers = append(s.pinVers, ver)
	s.pinCnts = append(s.pinCnts, 1)
}

// Unpin releases one reference to version ver. It panics on a version that
// was never pinned — that would mean the runtime's spawn/reap accounting
// broke, exactly the bug the panic exists to surface.
func (l *Log) Unpin(ver int) {
	s := l.s
	if s != nil {
		for i, v := range s.pinVers {
			if v != ver {
				continue
			}
			if s.pinCnts[i]--; s.pinCnts[i] == 0 {
				last := len(s.pinVers) - 1
				s.pinVers[i] = s.pinVers[last]
				s.pinCnts[i] = s.pinCnts[last]
				s.pinVers = s.pinVers[:last]
				s.pinCnts = s.pinCnts[:last]
			}
			return
		}
	}
	panic(fmt.Sprintf("mergeable: Unpin(%d) without matching Pin", ver))
}

// MovePin atomically rebases one pin from version old to version new — the
// sync-refresh path, where a child's base advances to the parent's current
// version.
func (l *Log) MovePin(old, new int) {
	if old == new {
		return
	}
	l.Pin(new)
	l.Unpin(old)
}

// Pinned reports whether any live reference pins this log's history.
func (l *Log) Pinned() bool { return l.s != nil && len(l.s.pinVers) > 0 }

// Watermark returns the minimum pinned version — the version below which
// no live child can ever look — and whether any pin exists.
func (l *Log) Watermark() (int, bool) {
	s := l.s
	if s == nil || len(s.pinVers) == 0 {
		return 0, false
	}
	min := s.pinVers[0]
	for _, v := range s.pinVers[1:] {
		if v < min {
			min = v
		}
	}
	return min, true
}

// ResetTrimMark seeds the transient trim mark for one GC pass: at the pin
// watermark when live children exist, at the full committed length (trim
// everything) otherwise. The runtime then lowers the mark with
// LowerTrimMark for every version it must keep and consumes it with
// TrimToMark. The mark is scratch — it carries no meaning between passes.
func (l *Log) ResetTrimMark() {
	s := l.s
	if s == nil {
		return
	}
	if len(s.pinVers) > 0 {
		min := s.pinVers[0]
		for _, v := range s.pinVers[1:] {
			if v < min {
				min = v
			}
		}
		s.trimMark = min
	} else {
		s.trimMark = s.offset + len(s.committed)
	}
}

// LowerTrimMark lowers the transient trim mark to v if v is lower.
func (l *Log) LowerTrimMark(v int) {
	if l.s != nil && v < l.s.trimMark {
		l.s.trimMark = v
	}
}

// TrimToMark trims to the transient trim mark, skipping the copy when
// fewer than slack operations would drop (slack <= 0 trims eagerly).
// Returns how many operations were dropped.
func (l *Log) TrimToMark(slack int) int {
	s := l.s
	if s == nil {
		return 0
	}
	if slack > 0 && s.trimMark-s.offset < slack {
		return 0
	}
	return l.Trim(s.trimMark)
}

// RetainedLen returns how many committed operations are physically
// retained (not yet trimmed). Tests use it to verify history trimming.
func (l *Log) RetainedLen() int {
	if l.s == nil {
		return 0
	}
	return len(l.s.committed)
}

// MarkStale marks the copy unusable until refreshed (used for clones, which
// per Section II.E inherit an outdated value and must Sync first).
func (l *Log) MarkStale() { l.state().stale = true }

// ClearStale marks the copy usable again after a refresh.
func (l *Log) ClearStale() {
	if l.s != nil {
		l.s.stale = false
	}
}

// Stale reports whether the copy must be refreshed before use.
func (l *Log) Stale() bool { return l.s != nil && l.s.stale }

// ensureUsable panics when a stale copy is accessed. A clone's data is only
// a placeholder until its first Sync (Section II.E of the paper).
func (l *Log) ensureUsable() {
	if l.Stale() {
		panic("mergeable: structure is stale; a cloned task must call Sync() before using its data")
	}
}

// reset clears the log completely (used by CloneValue implementations).
func (l *Log) reset() { *l = Log{} }

// FingerprintBytes hashes a byte rendering of a value with FNV-1a. All
// provided structures derive their Fingerprint from a deterministic
// rendering of their value.
func FingerprintBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// FingerprintString hashes a string rendering of a value.
func FingerprintString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// CombineFingerprints folds several structure fingerprints into one,
// order-sensitively.
func CombineFingerprints(fps ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ReplayAsLocal applies ops to m and records them as m's own local
// operations. Distribution proxies use it to re-issue a remote task's
// operations as their own, so the standard merge machinery propagates
// them.
func ReplayAsLocal(m Mergeable, ops []ot.Op) error {
	for _, op := range ops {
		if err := m.ApplyRemote([]ot.Op{op}); err != nil {
			return err
		}
		m.Log().Record(op)
	}
	return nil
}

// adoptErr builds the error returned when AdoptFrom receives a foreign type.
func adoptErr(dst, src Mergeable) error {
	return fmt.Errorf("mergeable: cannot adopt %T into %T", src, dst)
}

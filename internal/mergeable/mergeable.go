// Package mergeable provides the library of mergeable data structures that
// Spawn & Merge tasks operate on: lists, queues, text buffers, maps, sets,
// counters, registers and trees.
//
// Every structure records the operations applied to it in an operation log
// (the operation-centric view of Section II.A of the paper). The task
// runtime uses the log to merge divergent copies with operational
// transformation: a child's local operations are transformed against the
// suffix of the parent's committed history the child has not seen, then
// applied to the parent and appended to that history.
//
// Structures are task-local by design — a task mutates only its own copies,
// so no internal locking exists or is needed. Sharing a structure between
// goroutines outside the Spawn/Merge protocol is a programming error.
//
// Programmers can add custom mergeable structures by implementing the
// Mergeable interface, exactly as the paper intends ("programmers can use
// an interface to implement new mergeable data structures").
package mergeable

import (
	"fmt"
	"hash/fnv"

	"repro/internal/ot"
)

// Mergeable is the contract between a data structure and the Spawn & Merge
// runtime. All provided structures implement it; user-defined structures
// may too.
//
// A structure must route every local mutation through its Log (apply the
// operation to its own state, then Log().Record(op)) and must be able to
// apply *remote* (already transformed) operations without re-recording
// them.
type Mergeable interface {
	// Log exposes the structure's operation log. The runtime uses it to
	// take local operations at merge time, to commit transformed
	// operations to the shared history, and to mark copies stale.
	Log() *Log

	// CloneValue returns a deep copy of the structure's current value with
	// a fresh, empty log. The runtime calls it on Spawn, Sync and when
	// building merge previews for condition functions.
	CloneValue() Mergeable

	// ApplyRemote applies already-transformed operations to the value
	// without recording them as local operations. The runtime calls it
	// with a child's transformed operations at merge time.
	ApplyRemote(ops []ot.Op) error

	// AdoptFrom replaces this structure's value with a deep copy of src,
	// which must have the same concrete type. The runtime uses it to
	// refresh a child's copies after Sync.
	AdoptFrom(src Mergeable) error

	// Fingerprint returns a hash of the current value. Equal values yield
	// equal fingerprints; the determinism checker and tests rely on it.
	Fingerprint() uint64
}

// Log is the operation log embedded in every mergeable structure. It keeps
//
//   - the committed history: operations already merged into this copy, in
//     the deterministic merge order. Children remember the history length
//     at copy time (their base version) and are later transformed against
//     everything committed after it.
//   - the local operations: mutations applied by the owning task since the
//     last flush, not yet part of any shared history.
//
// The committed history can be trimmed once no live child's base precedes
// a prefix; offset keeps version numbers stable across trims.
type Log struct {
	committed []ot.Op
	offset    int
	local     []ot.Op
	stale     bool
}

// Record appends a local operation. Structures call it from every mutator.
func (l *Log) Record(op ot.Op) {
	l.ensureUsable()
	l.local = append(l.local, op)
}

// LocalOps returns the not-yet-committed local operations (shared slice;
// callers must not modify it).
func (l *Log) LocalOps() []ot.Op { return l.local }

// TakeLocal removes and returns the local operations.
func (l *Log) TakeLocal() []ot.Op {
	ops := l.local
	l.local = nil
	return ops
}

// CommittedLen returns the version number of the committed history: the
// total number of operations ever committed, including trimmed ones.
func (l *Log) CommittedLen() int { return l.offset + len(l.committed) }

// CommittedSince returns the committed operations from version base
// onwards. It panics if base precedes the trimmed prefix, which would mean
// the runtime trimmed history still needed by a live child.
func (l *Log) CommittedSince(base int) []ot.Op {
	if base < l.offset {
		panic(fmt.Sprintf("mergeable: history before version %d was trimmed (need base %d)", l.offset, base))
	}
	return l.committed[base-l.offset:]
}

// Commit appends operations to the committed history.
func (l *Log) Commit(ops []ot.Op) {
	if len(ops) > 0 {
		l.committed = append(l.committed, ops...)
	}
}

// Trim drops committed history before version min. The runtime calls it
// with the minimum base version across live children so long-running tasks
// (e.g. the network simulation) do not accumulate unbounded history.
func (l *Log) Trim(min int) {
	if min <= l.offset {
		return
	}
	if max := l.CommittedLen(); min > max {
		min = max
	}
	n := min - l.offset
	l.committed = append([]ot.Op(nil), l.committed[n:]...)
	l.offset = min
}

// RetainedLen returns how many committed operations are physically
// retained (not yet trimmed). Tests use it to verify history trimming.
func (l *Log) RetainedLen() int { return len(l.committed) }

// MarkStale marks the copy unusable until refreshed (used for clones, which
// per Section II.E inherit an outdated value and must Sync first).
func (l *Log) MarkStale() { l.stale = true }

// ClearStale marks the copy usable again after a refresh.
func (l *Log) ClearStale() { l.stale = false }

// Stale reports whether the copy must be refreshed before use.
func (l *Log) Stale() bool { return l.stale }

// ensureUsable panics when a stale copy is accessed. A clone's data is only
// a placeholder until its first Sync (Section II.E of the paper).
func (l *Log) ensureUsable() {
	if l.stale {
		panic("mergeable: structure is stale; a cloned task must call Sync() before using its data")
	}
}

// reset clears the log completely (used by CloneValue implementations).
func (l *Log) reset() { *l = Log{} }

// FingerprintBytes hashes a byte rendering of a value with FNV-1a. All
// provided structures derive their Fingerprint from a deterministic
// rendering of their value.
func FingerprintBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// FingerprintString hashes a string rendering of a value.
func FingerprintString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// CombineFingerprints folds several structure fingerprints into one,
// order-sensitively.
func CombineFingerprints(fps ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ReplayAsLocal applies ops to m and records them as m's own local
// operations. Distribution proxies use it to re-issue a remote task's
// operations as their own, so the standard merge machinery propagates
// them.
func ReplayAsLocal(m Mergeable, ops []ot.Op) error {
	for _, op := range ops {
		if err := m.ApplyRemote([]ot.Op{op}); err != nil {
			return err
		}
		m.Log().Record(op)
	}
	return nil
}

// adoptErr builds the error returned when AdoptFrom receives a foreign type.
func adoptErr(dst, src Mergeable) error {
	return fmt.Errorf("mergeable: cannot adopt %T into %T", src, dst)
}

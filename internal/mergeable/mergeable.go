// Package mergeable provides the library of mergeable data structures that
// Spawn & Merge tasks operate on: lists, queues, text buffers, maps, sets,
// counters, registers and trees.
//
// Every structure records the operations applied to it in an operation log
// (the operation-centric view of Section II.A of the paper). The task
// runtime uses the log to merge divergent copies with operational
// transformation: a child's local operations are transformed against the
// suffix of the parent's committed history the child has not seen, then
// applied to the parent and appended to that history.
//
// Structures are task-local by design — a task mutates only its own copies,
// so no internal locking exists or is needed. Sharing a structure between
// goroutines outside the Spawn/Merge protocol is a programming error.
//
// Programmers can add custom mergeable structures by implementing the
// Mergeable interface, exactly as the paper intends ("programmers can use
// an interface to implement new mergeable data structures").
package mergeable

import (
	"fmt"
	"hash/fnv"

	"repro/internal/ot"
)

// Mergeable is the contract between a data structure and the Spawn & Merge
// runtime. All provided structures implement it; user-defined structures
// may too.
//
// A structure must route every local mutation through its Log (apply the
// operation to its own state, then Log().Record(op)) and must be able to
// apply *remote* (already transformed) operations without re-recording
// them.
type Mergeable interface {
	// Log exposes the structure's operation log. The runtime uses it to
	// take local operations at merge time, to commit transformed
	// operations to the shared history, and to mark copies stale.
	Log() *Log

	// CloneValue returns a deep copy of the structure's current value with
	// a fresh, empty log. The runtime calls it on Spawn, Sync and when
	// building merge previews for condition functions.
	CloneValue() Mergeable

	// ApplyRemote applies already-transformed operations to the value
	// without recording them as local operations. The runtime calls it
	// with a child's transformed operations at merge time.
	ApplyRemote(ops []ot.Op) error

	// AdoptFrom replaces this structure's value with a deep copy of src,
	// which must have the same concrete type. The runtime uses it to
	// refresh a child's copies after Sync.
	AdoptFrom(src Mergeable) error

	// Fingerprint returns a hash of the current value. Equal values yield
	// equal fingerprints; the determinism checker and tests rely on it.
	Fingerprint() uint64
}

// Log is the operation log embedded in every mergeable structure. It keeps
//
//   - the committed history: operations already merged into this copy, in
//     the deterministic merge order. Children remember the history length
//     at copy time (their base version) and are later transformed against
//     everything committed after it.
//   - the local operations: mutations applied by the owning task since the
//     last flush, not yet part of any shared history.
//
// The committed history can be trimmed once no live child's base precedes
// a prefix; offset keeps version numbers stable across trims.
// Log is one pointer wide: the actual state lives behind it and is
// allocated on first use. CloneValue runs once per structure per spawn —
// the hottest allocation site in fan-out-heavy programs — and every clone
// starts with an empty log, so embedding the full state inline would make
// each clone carry (and the allocator zero) five words of dead log. With
// the lazy handle a clone's log costs one nil pointer, and a child that
// never mutates a structure never allocates log state at all.
type Log struct {
	s *logState
}

// bufOwner values: which slice currently uses logState.buf as backing.
const (
	bufFree int8 = iota
	bufLocal
	bufCommitted
)

type logState struct {
	committed []ot.Op
	offset    int
	local     []ot.Op
	stale     bool
	// tracker is an opaque owner token for the runtime: the task currently
	// holding this structure in its history-tracking set. It lets the
	// per-spawn tracking pass skip structures already tracked with one
	// pointer comparison instead of a map insert. Owned by the tracking
	// task's goroutine, like the rest of the log.
	tracker any
	// buf backs short op runs without a heap allocation: local borrows it
	// for the first recorded batch, and FlushLocal hands the borrow to
	// committed when the history is still empty (the first flush, i.e.
	// every structure's first spawn). bufOwner says who holds the borrow;
	// a slice that outgrows the buffer silently migrates to the heap and
	// the owner mark just goes stale until the next reset point.
	bufOwner int8
	buf      [8]ot.Op
}

// state returns the backing state, allocating it on first use.
func (l *Log) state() *logState {
	if l.s == nil {
		l.s = &logState{}
	}
	return l.s
}

// Tracker returns the opaque owner token set by SetTracker.
func (l *Log) Tracker() any {
	if l.s == nil {
		return nil
	}
	return l.s.tracker
}

// SetTracker records an opaque owner token. The runtime maintains the
// invariant that a non-nil token means the structure is present in that
// owner's tracking set.
func (l *Log) SetTracker(v any) {
	if v == nil && l.s == nil {
		return
	}
	l.state().tracker = v
}

// Record appends a local operation. Structures call it from every mutator.
func (l *Log) Record(op ot.Op) {
	s := l.state()
	if s.stale {
		l.ensureUsable()
	}
	if s.local == nil {
		if s.bufOwner == bufFree {
			s.bufOwner = bufLocal
			s.local = s.buf[:0]
		} else {
			// Skip append's 1→2→4 growth ramp: a structure that records one
			// operation almost always records a few more before the next
			// flush.
			s.local = make([]ot.Op, 0, 8)
		}
	}
	s.local = append(s.local, op)
}

// LocalOps returns the not-yet-committed local operations (shared slice;
// callers must not modify it).
func (l *Log) LocalOps() []ot.Op {
	if l.s == nil {
		return nil
	}
	return l.s.local
}

// TakeLocal removes and returns the local operations. The returned slice is
// the caller's to keep: when the operations sit in the log's inline buffer
// they are copied out, so later Records never overwrite them.
func (l *Log) TakeLocal() []ot.Op {
	if l.s == nil {
		return nil
	}
	s := l.s
	ops := s.local
	s.local = nil
	if s.bufOwner == bufLocal {
		s.bufOwner = bufFree
		if len(ops) == 0 {
			return nil
		}
		ops = append([]ot.Op(nil), ops...)
	}
	return ops
}

// FlushLocal moves the local operations into the committed history. It is
// Commit(TakeLocal()) without the intermediate hand-off — the per-spawn and
// per-merge flush runs over every bound structure, most with nothing
// pending, so the empty case stays write-free.
func (l *Log) FlushLocal() {
	if l.s == nil || len(l.s.local) == 0 {
		return
	}
	s := l.s
	if len(s.committed) == 0 {
		// First flush: the history simply takes over the local slice (and
		// with it the inline-buffer borrow, if any) instead of copying.
		s.committed = s.local
		if s.bufOwner == bufLocal {
			s.bufOwner = bufCommitted
		}
	} else {
		s.committed = append(s.committed, s.local...)
		if s.bufOwner == bufLocal {
			s.bufOwner = bufFree
		}
	}
	s.local = nil
}

// CommittedLen returns the version number of the committed history: the
// total number of operations ever committed, including trimmed ones.
func (l *Log) CommittedLen() int {
	if l.s == nil {
		return 0
	}
	return l.s.offset + len(l.s.committed)
}

// CommittedSince returns the committed operations from version base
// onwards. It panics if base precedes the trimmed prefix, which would mean
// the runtime trimmed history still needed by a live child.
func (l *Log) CommittedSince(base int) []ot.Op {
	if l.s == nil {
		if base != 0 {
			panic(fmt.Sprintf("mergeable: empty history cannot satisfy base %d", base))
		}
		return nil
	}
	if base < l.s.offset {
		panic(fmt.Sprintf("mergeable: history before version %d was trimmed (need base %d)", l.s.offset, base))
	}
	return l.s.committed[base-l.s.offset:]
}

// Commit appends operations to the committed history.
func (l *Log) Commit(ops []ot.Op) {
	if len(ops) > 0 {
		s := l.state()
		s.committed = append(s.committed, ops...)
	}
}

// Trim drops committed history before version min. The runtime calls it
// with the minimum base version across live children so long-running tasks
// (e.g. the network simulation) do not accumulate unbounded history.
func (l *Log) Trim(min int) {
	if l.s == nil || min <= l.s.offset {
		return
	}
	s := l.s
	if max := l.CommittedLen(); min > max {
		min = max
	}
	n := min - s.offset
	s.committed = append([]ot.Op(nil), s.committed[n:]...)
	s.offset = min
	if s.bufOwner == bufCommitted {
		// The copy above moved the history off the inline buffer.
		s.bufOwner = bufFree
	}
}

// RetainedLen returns how many committed operations are physically
// retained (not yet trimmed). Tests use it to verify history trimming.
func (l *Log) RetainedLen() int {
	if l.s == nil {
		return 0
	}
	return len(l.s.committed)
}

// MarkStale marks the copy unusable until refreshed (used for clones, which
// per Section II.E inherit an outdated value and must Sync first).
func (l *Log) MarkStale() { l.state().stale = true }

// ClearStale marks the copy usable again after a refresh.
func (l *Log) ClearStale() {
	if l.s != nil {
		l.s.stale = false
	}
}

// Stale reports whether the copy must be refreshed before use.
func (l *Log) Stale() bool { return l.s != nil && l.s.stale }

// ensureUsable panics when a stale copy is accessed. A clone's data is only
// a placeholder until its first Sync (Section II.E of the paper).
func (l *Log) ensureUsable() {
	if l.Stale() {
		panic("mergeable: structure is stale; a cloned task must call Sync() before using its data")
	}
}

// reset clears the log completely (used by CloneValue implementations).
func (l *Log) reset() { *l = Log{} }

// FingerprintBytes hashes a byte rendering of a value with FNV-1a. All
// provided structures derive their Fingerprint from a deterministic
// rendering of their value.
func FingerprintBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// FingerprintString hashes a string rendering of a value.
func FingerprintString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// CombineFingerprints folds several structure fingerprints into one,
// order-sensitively.
func CombineFingerprints(fps ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ReplayAsLocal applies ops to m and records them as m's own local
// operations. Distribution proxies use it to re-issue a remote task's
// operations as their own, so the standard merge machinery propagates
// them.
func ReplayAsLocal(m Mergeable, ops []ot.Op) error {
	for _, op := range ops {
		if err := m.ApplyRemote([]ot.Op{op}); err != nil {
			return err
		}
		m.Log().Record(op)
	}
	return nil
}

// adoptErr builds the error returned when AdoptFrom receives a foreign type.
func adoptErr(dst, src Mergeable) error {
	return fmt.Errorf("mergeable: cannot adopt %T into %T", src, dst)
}

package mergeable_test

import (
	"fmt"

	"repro/internal/mergeable"
	"repro/internal/ot"
)

// The operation-centric view: a structure records what was done to it.
func ExampleList() {
	l := mergeable.NewList(1, 2, 3)
	l.Append(4)
	l.Delete(0)
	fmt.Println(l.Values())
	for _, op := range l.Log().LocalOps() {
		fmt.Println(op)
	}
	// Output:
	// [2 3 4]
	// ins(3,4)
	// del(0)
}

// Merging two copies' concurrent operations with operational
// transformation — what the runtime does for every structure at every
// merge (simplified to one structure and one child).
func ExampleMergeable() {
	parent := mergeable.NewList("a", "b", "c")

	// Spawn: flush, remember the base version, deep-copy.
	parent.Log().Commit(parent.Log().TakeLocal())
	base := parent.Log().CommittedLen()
	child := parent.CloneValue().(*mergeable.List[string])

	// Concurrent edits: Figure 1's del(2) and ins(0,d).
	child.Delete(2)
	parent.Insert(0, "d")

	// Merge: transform the child's ops against the unseen history.
	parent.Log().Commit(parent.Log().TakeLocal())
	server := parent.Log().CommittedSince(base)
	transformed := ot.TransformAgainst(child.Log().TakeLocal(), server)
	if err := parent.ApplyRemote(transformed); err != nil {
		panic(err)
	}
	parent.Log().Commit(transformed)

	fmt.Println(parent.Values())
	fmt.Println(transformed[0])
	// Output:
	// [d a b]
	// del(3)
}

// Counters merge by accumulation — the cheapest conflict-free structure.
func ExampleCounter() {
	c := mergeable.NewCounter(10)
	copy1 := c.CloneValue().(*mergeable.Counter)
	copy2 := c.CloneValue().(*mergeable.Counter)
	copy1.Add(5)
	copy2.Add(-3)
	c.ApplyRemote(copy1.Log().TakeLocal())
	c.ApplyRemote(copy2.Log().TakeLocal())
	fmt.Println(c.Value())
	// Output: 12
}

// FastQueue shares structure on clone: a copy is O(1) no matter the size.
func ExampleFastQueue() {
	q := mergeable.NewFastQueue(1, 2, 3)
	clone := q.CloneValue().(*mergeable.FastQueue[int])
	clone.Push(4) // does not touch q
	v, _ := q.PopFront()
	fmt.Println(v, q.Values(), clone.Values())
	// Output: 1 [2 3] [1 2 3 4]
}

// Package bench is the measurement harness that regenerates the paper's
// evaluation (Figure 3 and the quantitative claims of Section III): it
// sweeps the host workload l over the four simulation engines, reports the
// same series the paper plots, and derives the paper's headline numbers —
// the constant Spawn & Merge overhead, the relative overhead decreasing
// with l, and the det-vs-nondet gap.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Point is one x-position of Figure 3: the median simulation time of
// every engine at workload l.
type Point struct {
	Workload int
	Millis   map[string]float64 // engine name -> median wall time in ms
}

// SweepConfig parameterizes a Figure 3 regeneration.
type SweepConfig struct {
	Base      netsim.Config // hosts/messages/TTL/seed; workload is overridden
	Workloads []int         // the l axis (paper: 0..10000)
	Repeats   int           // runs averaged per point (paper: "several times")
	Engines   []string      // series to measure; nil = EngineOrder (Figure 3's four)
	Verbose   io.Writer     // progress sink, may be nil
}

// EngineOrder is the series order of Figure 3's legend.
var EngineOrder = []string{
	"conventional-nondet",
	"conventional-det",
	"spawnmerge-nondet",
	"spawnmerge-det",
}

// Sweep measures every engine at every workload and returns one Point per
// workload.
func Sweep(cfg SweepConfig) ([]Point, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	engines := cfg.Engines
	if engines == nil {
		engines = EngineOrder
	}
	points := make([]Point, 0, len(cfg.Workloads))
	for _, l := range cfg.Workloads {
		p := Point{Workload: l, Millis: make(map[string]float64)}
		for _, name := range engines {
			c := cfg.Base
			c.Workload = l
			times := make([]time.Duration, 0, cfg.Repeats)
			for r := 0; r < cfg.Repeats; r++ {
				res, err := netsim.RunEngine(name, c)
				if err != nil {
					return nil, fmt.Errorf("bench: %s at l=%d: %w", name, l, err)
				}
				times = append(times, res.Elapsed)
			}
			// Median rather than mean: simulation runs are seconds long and
			// shared machines inject multi-hundred-ms outliers.
			p.Millis[name] = stats.SummarizeDurations(times).Median
			if cfg.Verbose != nil {
				fmt.Fprintf(cfg.Verbose, "  l=%-6d %-22s %8.1f ms (n=%d)\n", l, name, p.Millis[name], cfg.Repeats)
			}
		}
		points = append(points, p)
	}
	return points, nil
}

// WriteTable renders the sweep as the data table behind Figure 3. It
// prints whatever series the points carry: Figure 3's four by default,
// plus the COW ablations when the sweep included them.
func WriteTable(w io.Writer, points []Point) {
	names := seriesOf(points)
	fmt.Fprintf(w, "%-10s", "l")
	for _, name := range names {
		fmt.Fprintf(w, "%24s", name)
	}
	fmt.Fprintln(w)
	for _, p := range points {
		fmt.Fprintf(w, "%-10d", p.Workload)
		for _, name := range names {
			fmt.Fprintf(w, "%21.1fms", p.Millis[name])
		}
		fmt.Fprintln(w)
	}
}

// seriesOf lists the engine names present in points: EngineOrder first,
// then any extras in sorted order.
func seriesOf(points []Point) []string {
	if len(points) == 0 {
		return nil
	}
	present := points[0].Millis
	var names []string
	for _, n := range EngineOrder {
		if _, ok := present[n]; ok {
			names = append(names, n)
		}
	}
	var extra []string
	for n := range present {
		known := false
		for _, k := range EngineOrder {
			if n == k {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// Analysis extracts the paper's Section III claims from a sweep.
type Analysis struct {
	// ConstantOverheadMillis is the Spawn & Merge cost at l=0 minus the
	// conventional cost at l=0 — the paper's "constant overhead of about
	// 400 milliseconds per run" (absolute value differs on our hardware;
	// the claim is that it is constant, not its magnitude).
	ConstantOverheadMillis float64
	// OverheadPercentAtLowL / AtHighL reproduce "38% at 1000 iterations
	// decreasing to about 7% at 10000" — relative overhead shrinks as the
	// host workload grows.
	OverheadPercentAtLowL  float64
	OverheadPercentAtHighL float64
	// DetGapPercent is how much faster spawnmerge-det is than
	// spawnmerge-nondet, averaged over the sweep (paper: 1–4%).
	DetGapPercent float64
	// ConvFit and SMFit are linear fits of time vs workload; the paper
	// observes both rise linearly (R² close to 1).
	ConvFit, SMFit stats.LinearFit
}

// Analyze derives the Section III claims from sweep points. It requires
// at least two workloads.
func Analyze(points []Point) Analysis {
	var a Analysis
	if len(points) == 0 {
		return a
	}
	first, last := points[0], points[len(points)-1]
	a.ConstantOverheadMillis = first.Millis["spawnmerge-nondet"] - first.Millis["conventional-nondet"]

	lowIdx := 0
	if len(points) > 1 {
		lowIdx = 1 // the paper quotes overhead at the first nonzero l
	}
	a.OverheadPercentAtLowL = stats.OverheadPercent(
		points[lowIdx].Millis["spawnmerge-nondet"], points[lowIdx].Millis["conventional-nondet"])
	a.OverheadPercentAtHighL = stats.OverheadPercent(
		last.Millis["spawnmerge-nondet"], last.Millis["conventional-nondet"])

	var gapSum float64
	var gapN int
	for _, p := range points {
		nd, d := p.Millis["spawnmerge-nondet"], p.Millis["spawnmerge-det"]
		if nd > 0 {
			gapSum += (nd - d) / nd * 100
			gapN++
		}
	}
	if gapN > 0 {
		a.DetGapPercent = gapSum / float64(gapN)
	}

	xs := make([]float64, len(points))
	conv := make([]float64, len(points))
	sm := make([]float64, len(points))
	for i, p := range points {
		xs[i] = float64(p.Workload)
		conv[i] = p.Millis["conventional-nondet"]
		sm[i] = p.Millis["spawnmerge-nondet"]
	}
	a.ConvFit = stats.FitLinear(xs, conv)
	a.SMFit = stats.FitLinear(xs, sm)
	return a
}

// WriteAnalysis renders the analysis next to the paper's claims.
func WriteAnalysis(w io.Writer, a Analysis) {
	fmt.Fprintf(w, "constant Spawn&Merge overhead at l=0:  %.1f ms   (paper: ~400 ms constant; absolute value is hardware/runtime specific)\n", a.ConstantOverheadMillis)
	fmt.Fprintf(w, "relative overhead at low l:            %.1f %%    (paper: ~38%% at l=1000)\n", a.OverheadPercentAtLowL)
	fmt.Fprintf(w, "relative overhead at high l:           %.1f %%    (paper: ~7%% at l=10000 — must be well below the low-l overhead)\n", a.OverheadPercentAtHighL)
	fmt.Fprintf(w, "spawnmerge det faster than nondet by:  %.1f %%    (paper: 1–4%%)\n", a.DetGapPercent)
	fmt.Fprintf(w, "conventional growth:                   %.3f ms per hash iteration (R²=%.3f; paper: proportional)\n", a.ConvFit.Slope, a.ConvFit.R2)
	fmt.Fprintf(w, "spawn&merge growth:                    %.3f ms per hash iteration (R²=%.3f; paper: rises alongside)\n", a.SMFit.Slope, a.SMFit.R2)
}

// WriteASCIIChart draws the four series the way Figure 3 plots them:
// simulation time (y) against host workload (x).
func WriteASCIIChart(w io.Writer, points []Point, height int) {
	if len(points) == 0 || height < 4 {
		return
	}
	var maxMs float64
	for _, p := range points {
		for _, v := range p.Millis {
			if v > maxMs {
				maxMs = v
			}
		}
	}
	if maxMs == 0 {
		return
	}
	marks := map[string]byte{
		"conventional-nondet": 'c',
		"conventional-det":    'C',
		"spawnmerge-nondet":   's',
		"spawnmerge-det":      'S',
	}
	colWidth := 5
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(points)*colWidth))
	}
	for xi, p := range points {
		for _, name := range EngineOrder {
			y := int((p.Millis[name] / maxMs) * float64(height-1))
			row := height - 1 - y
			col := xi*colWidth + colWidth/2
			if grid[row][col] == ' ' {
				grid[row][col] = marks[name]
			} else {
				grid[row][col] = '*' // overlapping series
			}
		}
	}
	fmt.Fprintf(w, "Simulation time vs host workload (y max = %.0f ms)\n", maxMs)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", string(row))
	}
	fmt.Fprintf(w, "+%s\n ", strings.Repeat("-", len(points)*colWidth))
	for _, p := range points {
		fmt.Fprintf(w, "%-*d", colWidth, p.Workload)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  c=conventional-nondet  C=conventional-det  s=spawnmerge-nondet  S=spawnmerge-det  *=overlap")
}

package bench

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// smallSweep runs a scaled-down Figure 3 sweep (small network, low l) so
// the harness logic is exercised quickly; the full-scale sweep lives in
// cmd/figure3 and bench_test.go.
func smallSweep(t *testing.T) []Point {
	t.Helper()
	points, err := Sweep(SweepConfig{
		Base:      netsim.Config{Hosts: 4, Messages: 8, TTL: 5, Seed: 3},
		Workloads: []int{0, 40},
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestSweepShape(t *testing.T) {
	points := smallSweep(t)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		for _, name := range EngineOrder {
			if _, ok := p.Millis[name]; !ok {
				t.Fatalf("missing engine %s at l=%d", name, p.Workload)
			}
		}
	}
}

func TestAnalyzeAndRender(t *testing.T) {
	points := []Point{
		{Workload: 0, Millis: map[string]float64{
			"conventional-nondet": 10, "conventional-det": 10,
			"spawnmerge-nondet": 410, "spawnmerge-det": 400,
		}},
		{Workload: 1000, Millis: map[string]float64{
			"conventional-nondet": 1500, "conventional-det": 1500,
			"spawnmerge-nondet": 2070, "spawnmerge-det": 2000,
		}},
		{Workload: 10000, Millis: map[string]float64{
			"conventional-nondet": 14000, "conventional-det": 14000,
			"spawnmerge-nondet": 14980, "spawnmerge-det": 14700,
		}},
	}
	a := Analyze(points)
	if a.ConstantOverheadMillis != 400 {
		t.Fatalf("constant overhead = %v", a.ConstantOverheadMillis)
	}
	if a.OverheadPercentAtLowL < 37 || a.OverheadPercentAtLowL > 39 {
		t.Fatalf("low-l overhead = %v, want ~38", a.OverheadPercentAtLowL)
	}
	if a.OverheadPercentAtHighL > 8 {
		t.Fatalf("high-l overhead = %v, want ~7", a.OverheadPercentAtHighL)
	}
	if a.DetGapPercent <= 0 {
		t.Fatalf("det gap = %v, want positive", a.DetGapPercent)
	}
	if a.ConvFit.R2 < 0.99 || a.ConvFit.Slope <= 0 {
		t.Fatalf("conventional fit = %+v", a.ConvFit)
	}

	var sb strings.Builder
	WriteTable(&sb, points)
	WriteAnalysis(&sb, a)
	WriteASCIIChart(&sb, points, 10)
	out := sb.String()
	for _, want := range []string{"conventional-nondet", "38", "paper", "Simulation time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if a := Analyze(nil); a.ConstantOverheadMillis != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

// TestSweepOverheadDirection is a live miniature of the paper's headline
// measurement: Spawn & Merge must carry a positive constant overhead at
// l=0, and execution time must grow with l for both substrates.
func TestSweepOverheadDirection(t *testing.T) {
	points, err := Sweep(SweepConfig{
		Base:      netsim.Config{Hosts: 4, Messages: 8, TTL: 8, Seed: 3},
		Workloads: []int{0, 300},
		Repeats:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := points[0], points[1]
	if p0.Millis["spawnmerge-nondet"] <= p0.Millis["conventional-nondet"] {
		t.Errorf("expected Spawn&Merge overhead at l=0: sm=%.2fms conv=%.2fms",
			p0.Millis["spawnmerge-nondet"], p0.Millis["conventional-nondet"])
	}
	for _, name := range EngineOrder {
		if p1.Millis[name] <= p0.Millis[name] {
			t.Errorf("%s: time should grow with l (%.2f -> %.2f ms)", name, p0.Millis[name], p1.Millis[name])
		}
	}
}

// Package obs is the observability layer of the Spawn & Merge runtime: a
// hierarchical span tracer with deterministic span identity, per-kind
// latency histograms, and exporters (expvar and Prometheus text) for the
// counters the runtime already keeps.
//
// The design leans on the paper's own argument (Section I): determinism
// "has the potential to significantly simplify debugging". A span's
// identity — which track it belongs to, its position on that track, its
// kind, name, parent and operation count — derives only from the task
// tree's stable creation paths and per-task program order, never from
// wall-clock time or goroutine scheduling. Two runs of a deterministic
// program therefore produce bit-identical span trees, on any GOMAXPROCS;
// only the recorded durations differ. Diffing a failing run's tree
// against a good one localizes the divergence to the exact merge (or RPC,
// or WAL record) where behavior forked — the debugging story of
// task.Trace, extended from merge outcomes to the whole runtime.
//
// Tracks keep ordering deterministic without global sequencing: every
// span lives on a track whose spans are emitted by a single logical
// writer in program order (a task's own goroutine, a journal pick path, a
// single abort target). Cross-track interleaving is scheduling-dependent
// and deliberately not part of span identity.
//
// Tracing is strictly pay-for-use: the runtime guards every hook with a
// nil-tracer check, so a disabled tracer adds zero allocations and no
// atomic traffic to the spawn/merge hot path (BenchmarkSpawnMergeTraceOff
// pins this).
package obs

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// Kind classifies a span.
type Kind uint8

// Span kinds, grouped by the subsystem that emits them.
const (
	KindInvalid Kind = iota

	// Task runtime.
	KindSpawn     // parent copies data and starts a child
	KindMerge     // parent folds one quiescent child in (mergeChild)
	KindSync      // child blocks in Sync until the parent merges it
	KindAbort     // a task is marked externally aborted
	KindTransform // per-structure compact+transform inside a merge
	KindApply     // per-structure apply+commit inside a merge

	// Distributed runtime.
	KindSend     // dist RPC send (spawn or sync reply)
	KindRecv     // dist RPC recv (sync or done)
	KindFailover // proxy re-targets a dead node's task

	// Journal.
	KindAppend     // WAL record made durable
	KindCheckpoint // checkpoint written or verified
	KindReplay     // durable record verified against a resumed run

	// Elastic membership.
	KindMember    // membership transition (join, drain, leave)
	KindRebalance // in-flight task moved off a draining node

	// Collaborative front door.
	KindSession // session lifecycle (hello, resume, evict)

	// Bounded-memory compaction.
	KindCompact // history trim, WAL segment rotation, chunk reclaim
)

var kindNames = [...]string{
	KindInvalid:    "invalid",
	KindSpawn:      "spawn",
	KindMerge:      "merge",
	KindSync:       "sync",
	KindAbort:      "abort",
	KindTransform:  "transform",
	KindApply:      "apply",
	KindSend:       "rpc.send",
	KindRecv:       "rpc.recv",
	KindFailover:   "failover",
	KindAppend:     "wal.append",
	KindCheckpoint: "checkpoint",
	KindReplay:     "replay",
	KindMember:     "member",
	KindRebalance:  "rebalance",
	KindSession:    "session",
	KindCompact:    "compact",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds lists every real span kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindNames)-1)
	for k := KindSpawn; int(k) < len(kindNames); k++ {
		out = append(out, k)
	}
	return out
}

// Span is one recorded event. Every field except Dur is deterministic for
// a deterministic program; Dur is the wall-clock measurement and is
// excluded from fingerprints and diffs.
type Span struct {
	Seq    int           `json:"seq"`              // position on the track
	Parent int           `json:"parent"`           // Seq of the enclosing span on the same track; -1 for top level
	Kind   Kind          `json:"kind"`             // what happened
	Name   string        `json:"name"`             // deterministic detail (child path, structure position, outcome)
	Ops    int64         `json:"ops,omitempty"`    // operation / payload count
	Dur    time.Duration `json:"dur_ns,omitempty"` // wall-clock duration (not part of identity)
}

// Tracer collects spans onto tracks and aggregates per-kind latency
// histograms and counters. A nil *Tracer is the disabled state: the
// runtime checks for nil before touching any hook.
type Tracer struct {
	mu     sync.Mutex
	tracks map[string][]Span
	hists  map[Kind]*stats.Histogram
	counts *stats.Counters
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{
		tracks: make(map[string][]Span),
		hists:  make(map[Kind]*stats.Histogram),
		counts: stats.NewCounters(),
	}
}

// Counters returns the tracer's span counters: "span.<kind>" counts and
// "ops.<kind>" operation totals. For a deterministic program the whole
// set is identical across runs.
func (t *Tracer) Counters() *stats.Counters { return t.counts }

// Histogram returns the latency histogram for one span kind, creating it
// on first use.
func (t *Tracer) Histogram(k Kind) *stats.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.histLocked(k)
}

func (t *Tracer) histLocked(k Kind) *stats.Histogram {
	h := t.hists[k]
	if h == nil {
		h = stats.NewLatencyHistogram()
		t.hists[k] = h
	}
	return h
}

// Histograms snapshots the per-kind histograms recorded so far.
func (t *Tracer) Histograms() map[Kind]*stats.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Kind]*stats.Histogram, len(t.hists))
	for k, h := range t.hists {
		out[k] = h
	}
	return out
}

// Begin opens a span on track and returns its Seq, so nested spans can
// name it as their Parent and End can close it. The span's identity is
// fixed at Begin; End only fills measurements.
func (t *Tracer) Begin(track string, kind Kind, name string) int {
	t.mu.Lock()
	seq := len(t.tracks[track])
	t.tracks[track] = append(t.tracks[track], Span{Seq: seq, Parent: -1, Kind: kind, Name: name})
	t.mu.Unlock()
	return seq
}

// End closes the span opened by Begin on track. A non-empty name replaces
// the Begin name (for outcomes known only at completion — deterministic
// outcomes only; never embed measurements in the name). ops and the
// elapsed time since start are recorded, and the kind's histogram gets
// the latency sample.
func (t *Tracer) End(track string, seq int, name string, ops int64, start time.Time) {
	dur := time.Since(start)
	t.mu.Lock()
	spans := t.tracks[track]
	if seq < 0 || seq >= len(spans) {
		t.mu.Unlock()
		return
	}
	sp := &spans[seq]
	if name != "" {
		sp.Name = name
	}
	sp.Ops = ops
	sp.Dur = dur
	t.histLocked(sp.Kind).RecordDuration(dur)
	t.mu.Unlock()
	t.count(sp.Kind, ops)
}

// Emit records a complete span in one call: a child of parent (or top
// level with parent < 0) with a pre-measured duration.
func (t *Tracer) Emit(track string, kind Kind, name string, parent int, ops int64, dur time.Duration) int {
	t.mu.Lock()
	seq := len(t.tracks[track])
	if parent < 0 {
		parent = -1
	}
	t.tracks[track] = append(t.tracks[track], Span{Seq: seq, Parent: parent, Kind: kind, Name: name, Ops: ops, Dur: dur})
	t.histLocked(kind).RecordDuration(dur)
	t.mu.Unlock()
	t.count(kind, ops)
	return seq
}

func (t *Tracer) count(kind Kind, ops int64) {
	t.counts.Inc("span." + kind.String())
	if ops != 0 {
		t.counts.Add("ops."+kind.String(), ops)
	}
}

// SpanCount returns the total number of recorded spans.
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.tracks {
		n += len(s)
	}
	return n
}

package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Registry binds named counter sets and histograms for export. One
// registry backs both export formats:
//
//   - expvar: Publish exposes the whole registry as one JSON expvar, so it
//     appears under /debug/vars next to the runtime's own metrics;
//   - Prometheus text: PrometheusHandler serves the classic exposition
//     format (counters as `counter`, histograms as `summary` quantiles),
//     scrapeable by any Prometheus-compatible collector.
//
// Metric names are sanitized to the Prometheus charset on output; the
// runtime's dotted names ("dist.failover") become underscored
// ("spawnmerge_dist_failover").
type Registry struct {
	mu       sync.Mutex
	counters map[string]*stats.Counters
	hists    map[string]*stats.Histogram
	tracers  map[string]*Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*stats.Counters),
		hists:    make(map[string]*stats.Histogram),
	}
}

// AddCounters registers a counter set under a group name. Counter names
// are exported as <group>.<counter>.
func (r *Registry) AddCounters(group string, c *stats.Counters) {
	r.mu.Lock()
	r.counters[group] = c
	r.mu.Unlock()
}

// AddHistogram registers a histogram under a metric name.
func (r *Registry) AddHistogram(name string, h *stats.Histogram) {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// AddTracer registers a tracer's counters and per-kind latency
// histograms under a group name. Histograms created by the tracer after
// this call are picked up on every export (the tracer is re-queried, not
// snapshotted).
func (r *Registry) AddTracer(group string, t *Tracer) {
	r.AddCounters(group, t.Counters())
	r.mu.Lock()
	if r.tracers == nil {
		r.tracers = make(map[string]*Tracer)
	}
	r.tracers[group] = t
	r.mu.Unlock()
}

// snapshot flattens everything into sorted name -> value pairs plus the
// histogram set, under one lock.
func (r *Registry) snapshot() (counts []counterExport, hists []histExport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for group, c := range r.counters {
		for name, v := range c.Snapshot() {
			counts = append(counts, counterExport{name: group + "." + name, value: v})
		}
	}
	for name, h := range r.hists {
		hists = append(hists, histExport{name: name, snap: h.Snapshot(), quantiles: h.Quantiles(0.5, 0.9, 0.99)})
	}
	for group, t := range r.tracers {
		for kind, h := range t.Histograms() {
			hists = append(hists, histExport{
				name:      group + ".latency." + kind.String(),
				snap:      h.Snapshot(),
				quantiles: h.Quantiles(0.5, 0.9, 0.99),
			})
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].name < counts[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	return counts, hists
}

type counterExport struct {
	name  string
	value int64
}

type histExport struct {
	name      string
	snap      stats.HistogramSnapshot
	quantiles []float64 // p50, p90, p99
}

// ExpvarVar returns the registry as an expvar.Var rendering a JSON
// object: counters as integers, histograms as {count, sum, p50, p90,
// p99, max}.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any {
		counts, hists := r.snapshot()
		out := make(map[string]any, len(counts)+len(hists))
		for _, c := range counts {
			out[c.name] = c.value
		}
		for _, h := range hists {
			out[h.name] = map[string]any{
				"count": h.snap.Count,
				"sum":   h.snap.Sum,
				"p50":   h.quantiles[0],
				"p90":   h.quantiles[1],
				"p99":   h.quantiles[2],
				"max":   h.snap.Max,
			}
		}
		return out
	})
}

var publishOnce sync.Map // name -> *sync.Once

// Publish exposes the registry under name in the process-wide expvar
// namespace (visible at /debug/vars). Publishing the same name twice is
// a no-op instead of the panic expvar.Publish would raise, so tests and
// long-lived tools can call it freely.
func (r *Registry) Publish(name string) {
	onceAny, _ := publishOnce.LoadOrStore(name, &sync.Once{})
	onceAny.(*sync.Once).Do(func() {
		expvar.Publish(name, r.ExpvarVar())
	})
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `counter` metrics, histograms as
// `summary` quantile series with _sum and _count. All names carry the
// given prefix.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) {
	counts, hists := r.snapshot()
	for _, c := range counts {
		name := promName(prefix, c.name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.value)
	}
	qs := []string{"0.5", "0.9", "0.99"}
	for _, h := range hists {
		name := promName(prefix, h.name)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for i, q := range qs {
			fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, q, h.quantiles[i])
		}
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.snap.Sum, name, h.snap.Count)
	}
}

// PrometheusHandler serves WritePrometheus over HTTP.
func (r *Registry) PrometheusHandler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w, prefix)
	})
}

// Handler returns a mux serving the standard observability endpoints:
// /debug/vars (the process-wide expvar JSON, including everything this
// registry Published) and /metrics (this registry in Prometheus text
// format with the given prefix).
func (r *Registry) Handler(prefix string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", r.PrometheusHandler(prefix))
	return mux
}

// promName sanitizes a dotted metric name into the Prometheus charset.
func promName(prefix, name string) string {
	var sb strings.Builder
	sb.Grow(len(prefix) + len(name) + 1)
	if prefix != "" {
		sb.WriteString(prefix)
		sb.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if sb.Len() == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

package obs

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "invalid" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatalf("out-of-range kind: %q", Kind(200).String())
	}
	if KindInvalid.String() != "invalid" {
		t.Fatalf("invalid kind: %q", KindInvalid.String())
	}
}

func TestTracerBeginEnd(t *testing.T) {
	tr := New()
	seq := tr.Begin("r", KindMerge, "r/0")
	if seq != 0 {
		t.Fatalf("first seq = %d", seq)
	}
	tr.Emit("r", KindTransform, "s0", seq, 3, time.Millisecond)
	tr.End("r", seq, "r/0 merged", 3, time.Now().Add(-time.Millisecond))
	tree := tr.Tree()
	if len(tree.Tracks) != 1 || len(tree.Tracks[0].Spans) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	merge := tree.Tracks[0].Spans[0]
	if merge.Name != "r/0 merged" || merge.Ops != 3 || merge.Dur <= 0 {
		t.Fatalf("merge span = %+v", merge)
	}
	child := tree.Tracks[0].Spans[1]
	if child.Parent != seq || child.Kind != KindTransform {
		t.Fatalf("child span = %+v", child)
	}
	if tr.SpanCount() != 2 {
		t.Fatalf("span count = %d", tr.SpanCount())
	}
	counts := tr.Counters().Snapshot()
	if counts["span.merge"] != 1 || counts["span.transform"] != 1 || counts["ops.merge"] != 3 {
		t.Fatalf("counters = %v", counts)
	}
	if tr.Histogram(KindMerge).Count() != 1 {
		t.Fatal("merge histogram empty")
	}
}

func TestEndOutOfRangeIsNoop(t *testing.T) {
	tr := New()
	tr.End("r", 0, "x", 0, time.Now())
	tr.End("r", -1, "x", 0, time.Now())
	if tr.SpanCount() != 0 {
		t.Fatalf("span count = %d", tr.SpanCount())
	}
}

// buildSampleTracer emits the same spans with different durations per
// call: the deterministic identity with nondeterministic measurements.
func buildSampleTracer(durScale time.Duration) *Tracer {
	tr := New()
	seq := tr.Begin("r", KindMerge, "r/0")
	tr.Emit("r", KindTransform, "s0", seq, 2, durScale)
	tr.Emit("r", KindApply, "s0", seq, 2, 3*durScale)
	tr.End("r", seq, "r/0 merged", 2, time.Now().Add(-durScale))
	tr.Emit("r/0", KindSync, "merged", -1, 0, 2*durScale)
	return tr
}

func TestFingerprintIgnoresDurations(t *testing.T) {
	a := buildSampleTracer(time.Microsecond).Tree()
	b := buildSampleTracer(50 * time.Millisecond).Tree()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("diff of identical trees: %v", d)
	}
}

func TestFingerprintSeesIdentity(t *testing.T) {
	base := buildSampleTracer(time.Microsecond).Tree()
	for name, mutate := range map[string]func(*Tracer){
		"extra span":      func(tr *Tracer) { tr.Emit("r", KindAbort, "flagged", -1, 0, 0) },
		"different name":  func(tr *Tracer) { tr.Emit("r/1", KindSync, "aborted", -1, 0, 0) },
		"different track": func(tr *Tracer) { tr.Emit("q", KindSync, "merged", -1, 0, 0) },
	} {
		tr := buildSampleTracer(time.Microsecond)
		mutate(tr)
		if tr.Tree().Fingerprint() == base.Fingerprint() {
			t.Fatalf("%s: fingerprint did not change", name)
		}
		if d := Diff(base, tr.Tree()); len(d) == 0 {
			t.Fatalf("%s: diff empty", name)
		}
	}
}

func TestTreeRenderAndString(t *testing.T) {
	tree := buildSampleTracer(time.Microsecond).Tree()
	out := tree.String()
	for _, want := range []string{"r/0 merged", "merge", "transform", "apply", "sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Children of the merge span render indented one level deeper.
	var mergeIndent, childIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.Contains(trimmed, "merge") && !strings.Contains(trimmed, "track") {
			mergeIndent = len(line) - len(trimmed)
		}
		if strings.Contains(trimmed, "transform") {
			childIndent = len(line) - len(trimmed)
		}
	}
	if childIndent <= mergeIndent {
		t.Fatalf("transform (%d) not nested under merge (%d):\n%s", childIndent, mergeIndent, out)
	}
}

func TestDiffReportsFirstDivergence(t *testing.T) {
	a := New()
	a.Emit("r", KindSpawn, "r/0", -1, 1, 0)
	a.Emit("r", KindMerge, "r/0 merged", -1, 1, 0)
	b := New()
	b.Emit("r", KindSpawn, "r/0", -1, 1, 0)
	b.Emit("r", KindMerge, "r/0 aborted", -1, 1, 0)
	b.Emit("q", KindSync, "merged", -1, 0, 0)
	d := Diff(a.Tree(), b.Tree())
	if len(d) == 0 {
		t.Fatal("no divergences reported")
	}
	joined := strings.Join(d, "\n")
	if !strings.Contains(joined, "r/0 merged") || !strings.Contains(joined, "r/0 aborted") {
		t.Fatalf("diff does not show the diverging span: %v", d)
	}
	if !strings.Contains(joined, "q") {
		t.Fatalf("diff does not mention the missing track: %v", d)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{Seq: 2, Parent: 0, Kind: KindMerge, Name: "r/0 merged", Ops: 5, Dur: time.Millisecond}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Span
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestRegistryExpvar(t *testing.T) {
	reg := NewRegistry()
	c := stats.NewCounters()
	c.Add("merges", 7)
	reg.AddCounters("task", c)
	h := stats.NewHistogram([]float64{0.1, 1})
	h.Record(0.05)
	h.Record(0.5)
	reg.AddHistogram("latency", h)

	var buf strings.Builder
	buf.WriteString(reg.ExpvarVar().String())
	var got map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("expvar output not JSON: %v\n%s", err, buf.String())
	}
	if got["task.merges"] != float64(7) {
		t.Fatalf("task.merges = %v", got["task.merges"])
	}
	hist, ok := got["latency"].(map[string]any)
	if !ok || hist["count"] != float64(2) {
		t.Fatalf("latency = %v", got["latency"])
	}
}

func TestRegistryTracerLatencies(t *testing.T) {
	reg := NewRegistry()
	tr := New()
	reg.AddTracer("runtime", tr)
	// Histograms created after AddTracer must still be exported.
	tr.Emit("r", KindMerge, "r/0 merged", -1, 1, time.Millisecond)
	var sb strings.Builder
	reg.WritePrometheus(&sb, "spawnmerge")
	out := sb.String()
	for _, want := range []string{
		"# TYPE spawnmerge_runtime_span_merge counter",
		"spawnmerge_runtime_span_merge 1",
		"# TYPE spawnmerge_runtime_latency_merge summary",
		`spawnmerge_runtime_latency_merge{quantile="0.5"}`,
		"spawnmerge_runtime_latency_merge_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPublishTwiceAndHandler(t *testing.T) {
	reg := NewRegistry()
	c := stats.NewCounters()
	c.Add("beat", 1)
	reg.AddCounters("heart", c)
	reg.Publish("obs-test-metrics")
	reg.Publish("obs-test-metrics") // second publish must not panic

	if v := expvar.Get("obs-test-metrics"); v == nil {
		t.Fatal("not published")
	}

	mux := reg.Handler("spawnmerge")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "spawnmerge_heart_beat 1") {
		t.Fatalf("/metrics: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "obs-test-metrics") {
		t.Fatalf("/debug/vars: %d", rec.Code)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"task.merges":       "pfx_task_merges",
		"dist.rpc.send":     "pfx_dist_rpc_send",
		"weird-name/2":      "pfx_weird_name_2",
		"UPPER_ok":          "pfx_UPPER_ok",
		"latency.wal.fsync": "pfx_latency_wal_fsync",
	}
	for in, want := range cases {
		if got := promName("pfx", in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promName("", "9lives"); got != "_9lives" {
		t.Fatalf("leading digit: %q", got)
	}
}

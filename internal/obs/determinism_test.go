package obs_test

import (
	"hash/fnv"
	"testing"

	"repro/internal/detcheck"
	"repro/internal/mergeable"
	"repro/internal/obs"
	"repro/internal/task"
)

// tracedWorkload is a deterministic program covering the span-emitting
// surface of the task runtime: fan-out spawns, a nested spawn, sync
// round-trips, and an abort. It returns the traced run's observable
// outcome: the span-tree fingerprint mixed with the exported counter set.
func tracedWorkload() (uint64, error) {
	tr := obs.New()
	l := mergeable.NewList(1, 2, 3)
	c := mergeable.NewCounter(0)
	err := task.RunObserved(tr, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
		for i := 0; i < 4; i++ {
			i := i
			ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				d[0].(*mergeable.List[int]).Append(10 + i)
				d[1].(*mergeable.Counter).Inc()
				if i == 0 {
					// One nested spawn, so the tree has depth > 1.
					ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
						d[0].(*mergeable.List[int]).Append(100)
						return nil
					}, d...)
					return ctx.MergeAll()
				}
				return nil
			}, d...)
		}
		// One child that syncs in a loop until aborted — the sync and abort
		// span paths.
		h := ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			for {
				d[1].(*mergeable.Counter).Inc()
				if err := ctx.Sync(); err != nil {
					return nil
				}
			}
		}, d...)
		for i := 0; i < 3; i++ {
			if err := ctx.MergeAllFromSet([]*task.Task{h}); err != nil {
				return err
			}
		}
		h.Abort()
		return ctx.MergeAll()
	}, l, c)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	tree := tr.Tree()
	fp := tree.Fingerprint()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(fp >> (8 * i))
	}
	h.Write(b[:])
	// The exported counter set ("span.merge", "ops.transform", ...) must be
	// as reproducible as the tree itself.
	h.Write([]byte(tr.Counters().String()))
	return h.Sum64(), nil
}

// TestSpanTreeDeterministicAcrossProcs is the observability determinism
// guarantee in executable form: with tracing enabled, repeated runs of a
// deterministic program produce bit-identical span trees and counter sets
// on GOMAXPROCS 1 and 4 alike. Durations differ every run; they are
// excluded from identity, which is exactly what the fingerprint checks.
func TestSpanTreeDeterministicAcrossProcs(t *testing.T) {
	rep, err := detcheck.CheckAcrossProcs(8, []int{1, 4}, tracedWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Fatalf("span trees diverged: %s", rep)
	}
}

// TestTracedMatchesUntraced: tracing must observe, not perturb. The final
// merged structures of a traced run equal those of an untraced run.
func TestTracedMatchesUntraced(t *testing.T) {
	run := func(tr *obs.Tracer) (string, int64) {
		l := mergeable.NewList[int]()
		c := mergeable.NewCounter(0)
		err := task.RunWith(task.RunConfig{Obs: tr}, func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			for i := 0; i < 3; i++ {
				i := i
				ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
					d[0].(*mergeable.List[int]).Append(i)
					d[1].(*mergeable.Counter).Add(int64(i))
					return nil
				}, d...)
			}
			return ctx.MergeAll()
		}, l, c)
		if err != nil {
			t.Fatal(err)
		}
		return l.String(), c.Value()
	}
	tracedList, tracedCount := run(obs.New())
	plainList, plainCount := run(nil)
	if tracedList != plainList || tracedCount != plainCount {
		t.Fatalf("tracing perturbed the run: %q/%d vs %q/%d",
			tracedList, tracedCount, plainList, plainCount)
	}
}

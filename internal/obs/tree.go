package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// Tree is a tracer's spans frozen into a canonical, comparable form:
// tracks sorted by key, each track's spans in emission (= program) order.
// Two runs of a deterministic program produce Trees that are identical
// except for durations; Fingerprint and Diff both ignore durations, so
// they hold across runs and GOMAXPROCS settings.
type Tree struct {
	Tracks []Track `json:"tracks"`
}

// Track is one deterministic span sequence (a task's spans, one journal
// pick path, one abort target).
type Track struct {
	Key   string `json:"key"`
	Spans []Span `json:"spans"`
}

// Tree snapshots the tracer's spans into canonical form.
func (t *Tracer) Tree() *Tree {
	t.mu.Lock()
	keys := make([]string, 0, len(t.tracks))
	for k := range t.tracks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &Tree{Tracks: make([]Track, len(keys))}
	for i, k := range keys {
		out.Tracks[i] = Track{Key: k, Spans: append([]Span(nil), t.tracks[k]...)}
	}
	t.mu.Unlock()
	return out
}

// Fingerprint hashes the tree's deterministic content — track keys and
// every span's seq, parent, kind, name and ops — with FNV-1a. Durations
// are excluded, so the fingerprint of a deterministic program is stable
// across runs and core counts.
func (tr *Tree) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, track := range tr.Tracks {
		io.WriteString(h, track.Key)
		h.Write([]byte{0})
		writeInt(int64(len(track.Spans)))
		for _, sp := range track.Spans {
			writeInt(int64(sp.Seq))
			writeInt(int64(sp.Parent))
			h.Write([]byte{byte(sp.Kind)})
			io.WriteString(h, sp.Name)
			h.Write([]byte{0})
			writeInt(sp.Ops)
		}
	}
	return h.Sum64()
}

// Render writes the tree as indented text, tracks in key order, nested
// spans indented under their parents. withDurations includes the
// wall-clock measurements (never do this for output that will be
// fingerprinted or diffed byte-wise across runs).
func (tr *Tree) Render(w io.Writer, withDurations bool) {
	for _, track := range tr.Tracks {
		fmt.Fprintf(w, "%s\n", track.Key)
		depth := make(map[int]int, len(track.Spans))
		for _, sp := range track.Spans {
			d := 1
			if sp.Parent >= 0 {
				d = depth[sp.Parent] + 1
			}
			depth[sp.Seq] = d
			fmt.Fprintf(w, "%s#%d %s %s", strings.Repeat("  ", d), sp.Seq, sp.Kind, sp.Name)
			if sp.Ops != 0 {
				fmt.Fprintf(w, " ops=%d", sp.Ops)
			}
			if withDurations {
				fmt.Fprintf(w, " dur=%s", sp.Dur)
			}
			fmt.Fprintln(w)
		}
	}
}

// String renders the tree without durations.
func (tr *Tree) String() string {
	var sb strings.Builder
	tr.Render(&sb, false)
	return sb.String()
}

// Diff compares two trees merge-by-merge, ignoring durations. It returns
// nil when the trees are identical; otherwise a bounded list of
// human-readable divergences (missing tracks, first differing span per
// track), which localizes where a failing run forked from a good one.
func Diff(a, b *Tree) []string {
	const limit = 20
	var out []string
	add := func(format string, args ...any) bool {
		if len(out) >= limit {
			return false
		}
		out = append(out, fmt.Sprintf(format, args...))
		return len(out) < limit
	}
	am := make(map[string][]Span, len(a.Tracks))
	for _, t := range a.Tracks {
		am[t.Key] = t.Spans
	}
	bm := make(map[string][]Span, len(b.Tracks))
	for _, t := range b.Tracks {
		bm[t.Key] = t.Spans
	}
	keys := make([]string, 0, len(am)+len(bm))
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		as, aok := am[k]
		bs, bok := bm[k]
		switch {
		case !aok:
			if !add("track %q only in B (%d spans)", k, len(bs)) {
				return out
			}
			continue
		case !bok:
			if !add("track %q only in A (%d spans)", k, len(as)) {
				return out
			}
			continue
		}
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		for i := 0; i < n; i++ {
			if !sameSpan(as[i], bs[i]) {
				if !add("track %q span #%d: A={%s %s ops=%d parent=%d} B={%s %s ops=%d parent=%d}",
					k, i, as[i].Kind, as[i].Name, as[i].Ops, as[i].Parent,
					bs[i].Kind, bs[i].Name, bs[i].Ops, bs[i].Parent) {
					return out
				}
				break // first divergence per track is enough
			}
		}
		if len(as) != len(bs) {
			if !add("track %q length: A=%d B=%d", k, len(as), len(bs)) {
				return out
			}
		}
	}
	return out
}

func sameSpan(a, b Span) bool {
	return a.Seq == b.Seq && a.Parent == b.Parent && a.Kind == b.Kind && a.Name == b.Name && a.Ops == b.Ops
}

package ot

// This file is the transformation control algorithm: it decides which
// transformation function is applied to which pair of concurrent
// operations, composing the pairwise transforms of the operation algebras
// into sequence-against-sequence transformation.
//
// In the Spawn & Merge runtime every mergeable structure has a single,
// linear committed history. A child's operations are always transformed
// against one contiguous suffix of that history, so the control algorithm
// only needs the convergence property TP1
//
//	apply(apply(S, a), b') == apply(apply(S, b), a')
//
// of the pairwise transforms; TP2 (order independence of transformation
// paths) is never exercised. TP1 is enforced by property tests for every
// operation algebra.

// TransformPair transforms two concurrent operations against each other.
// It returns a' (a rewritten to apply after b) and b' (b rewritten to
// apply after a). By convention b is the priority side: when the two
// operations conflict irreconcilably, b wins.
func TransformPair(a, b Op) (aT, bT []Op) {
	return a.Transform(b, true), b.Transform(a, false)
}

// TransformSeqs transforms two concurrent operation sequences against each
// other. Both sequences must be based on the same initial state. It returns
//
//	aT — a rewritten to apply after all of b, and
//	bT — b rewritten to apply after all of a,
//
// such that apply(apply(S, a...), bT...) == apply(apply(S, b...), aT...).
// As in TransformPair, b is the priority side.
//
// The decomposition uses the standard identities
//
//	T(A1·A2, B) = T(A1, B) · T(A2, T(B, A1))
//	T(A, B1·B2) = T(T(A, B1), B2)
//
// so only pairwise transforms are ever computed. An operation may split
// (one deletion crossing an insertion becomes two) or be absorbed (empty
// result); the recursion handles both because intermediate results are
// themselves sequences.
//
// Homogeneous sequence-family inputs (every log of a list, queue or text
// structure) are dispatched to the shape-based fast path, which runs the
// same recursion without boxing intermediate operations; heterogeneous or
// tree/scalar inputs use the generic recursion below.
func TransformSeqs(a, b []Op) (aT, bT []Op) {
	if len(a) == 0 || len(b) == 0 {
		return a, b
	}
	if len(a) == 1 && len(b) == 1 {
		// A single pairwise transform needs none of the fast path's scratch
		// buffers; call it directly.
		return TransformPair(a[0], b[0])
	}
	if aS, bS, ok := toShapeOps(a, b); ok {
		if batchedTransform.Load() {
			// Run-length engine (batch.go): identical output, O(runs) walk.
			sc := scratchPool.Get().(*MergeScratch)
			bRuns := sc.batch.transformRuns(aS, bS)
			aT = materializeShapes(sc.batch.aOut)
			bSh := sc.batch.xsh[:0]
			for _, r := range bRuns {
				bSh = appendRunShapes(bSh, r, sc.batch.bCons)
			}
			sc.batch.xsh = bSh
			bT = materializeShapes(bSh)
			scratchPool.Put(sc)
			return aT, bT
		}
		aR, bR := transformShapeSeqs(aS, bS)
		return materializeShapes(aR), materializeShapes(bR)
	}
	return transformSeqsGeneric(a, b)
}

// transformSeqsGeneric is the interface-typed control recursion, kept as
// the fallback for operation families without a shape form (trees,
// scalars, user-defined operations) and as the oracle the fast-path
// equivalence tests compare against.
func transformSeqsGeneric(a, b []Op) (aT, bT []Op) {
	switch {
	case len(a) == 0 || len(b) == 0:
		return a, b
	case len(a) == 1 && len(b) == 1:
		return TransformPair(a[0], b[0])
	case len(a) > 1:
		a1, bMid := transformSeqsGeneric(a[:1], b)
		a2, bFinal := transformSeqsGeneric(a[1:], bMid)
		return concatOps(a1, a2), bFinal
	default: // len(a) == 1, len(b) > 1
		aMid, b1 := transformSeqsGeneric(a, b[:1])
		aFinal, b2 := transformSeqsGeneric(aMid, b[1:])
		return aFinal, concatOps(b1, b2)
	}
}

// TransformAgainst rewrites client so it applies after server. server is
// the priority side; this is the exact call the merge step performs with
// the child's local operations as client and the parent's committed history
// suffix as server.
//
// For the scalar families (counter, map, set, register) it takes an
// O(|client|+|server|) fast path: those transforms never reposition
// anything, and the server sequence is never modified by client
// operations, so every client operation transforms independently — it
// either survives unchanged or is absorbed by a matching server
// operation. Pure-overwrite sequence histories (SeqSet only on both
// sides) take the analogous linear path, since overwrites never
// reposition anything. Other sequence and tree families use the quadratic
// recursion. The property tests TestScalarFastPathMatchesGeneric and
// TestSetFastPathMatchesGeneric pin the equivalences.
func TransformAgainst(client, server []Op) []Op {
	if len(client) == 0 || len(server) == 0 {
		return client
	}
	sc := scratchPool.Get().(*MergeScratch)
	out := transformAgainstScratch(client, server, sc, true)
	scratchPool.Put(sc)
	return out
}

// transformScalarFast handles client/server sequences drawn entirely from
// the scalar families. ok is false when any operation is positional (or
// unknown), in which case the caller falls back to the general algorithm.
func transformScalarFast(client, server []Op) ([]Op, bool) {
	return transformScalarFastInto(client, server, nil)
}

// transformScalarFastInto is transformScalarFast appending surviving
// operations onto dst (which may be an arena; it is guaranteed untouched
// when ok is false). A nil dst allocates lazily.
func transformScalarFastInto(client, server, dst []Op) ([]Op, bool) {
	if len(client) == 0 || len(server) == 0 {
		return client, true
	}
	scalar := func(ops []Op) bool {
		for _, op := range ops {
			switch op.Kind() {
			case KindCounterAdd, KindMapSet, KindMapDelete, KindSetAdd, KindSetRemove, KindRegisterSet:
			default:
				return false
			}
		}
		return true
	}
	if !scalar(client) || !scalar(server) {
		return nil, false
	}

	// Index the server's absorbing operations. The rules mirror the
	// Transform methods in scalar.go with otherPriority = true.
	mapTouched := map[any]bool{} // MapSet or MapDelete: absorbs client MapSet
	mapSet := map[any]bool{}     // MapSet: absorbs client MapDelete
	setRemoved := map[any]bool{} // SetRemove: absorbs client SetAdd
	setAdded := map[any]bool{}   // SetAdd: absorbs client SetRemove
	regWritten := false          // RegisterSet: absorbs client RegisterSet
	for _, op := range server {
		switch v := op.(type) {
		case MapSet:
			mapTouched[v.Key] = true
			mapSet[v.Key] = true
		case MapDelete:
			mapTouched[v.Key] = true
		case SetAdd:
			setAdded[v.Elem] = true
		case SetRemove:
			setRemoved[v.Elem] = true
		case RegisterSet:
			regWritten = true
		}
	}

	out := dst
	for _, op := range client {
		switch v := op.(type) {
		case MapSet:
			if mapTouched[v.Key] {
				continue
			}
		case MapDelete:
			if mapSet[v.Key] {
				continue
			}
		case SetAdd:
			if setRemoved[v.Elem] {
				continue
			}
		case SetRemove:
			if setAdded[v.Elem] {
				continue
			}
		case RegisterSet:
			if regWritten {
				continue
			}
		}
		out = append(out, op)
	}
	return out, true
}

func concatOps(a, b []Op) []Op {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Op, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

package ot_test

import (
	"fmt"

	"repro/internal/ot"
)

// Figure 2 of the paper: transforming del(2) against a concurrent
// ins(0,d) shifts the deletion to index 3, and both application orders
// converge.
func ExampleTransformPair() {
	opA := ot.SeqDelete{Pos: 2, N: 1}
	opB := ot.SeqInsert{Pos: 0, Elems: []any{"d"}}

	aT, bT := ot.TransformPair(opA, opB)
	fmt.Println(aT[0], bT[0])

	base := []any{"a", "b", "c"}
	siteA, _ := ot.ApplySeq(base, opA)
	for _, op := range bT {
		siteA, _ = ot.ApplySeq(siteA, op)
	}
	siteB, _ := ot.ApplySeq(base, opB)
	for _, op := range aT {
		siteB, _ = ot.ApplySeq(siteB, op)
	}
	fmt.Println(siteA, siteB)
	// Output:
	// del(3) ins(0,d)
	// [d a b] [d a b]
}

// CompactSeq collapses a drained queue's pops into one ranged deletion
// before the quadratic transform runs.
func ExampleCompactSeq() {
	pops := []ot.Op{
		ot.SeqDelete{Pos: 0, N: 1},
		ot.SeqDelete{Pos: 0, N: 1},
		ot.SeqDelete{Pos: 0, N: 1},
	}
	fmt.Println(ot.CompactSeq(pops))
	// Output: [del(0,n=3)]
}

package ot

// Per-merge scratch arenas. A merge transforms every structure's pending
// operations against the parent's history; done naively each transform
// allocates unwrap buffers, worklists and a result slice. MergeScratch owns
// all of them and is reused across merges (the task runtime holds one per
// merge scratch pool entry; the package-level TransformAgainst borrows one
// from an internal pool), so the steady-state transform path allocates only
// the operations that genuinely changed shape.
//
// Ownership rules:
//
//   - Result slices returned by (*MergeScratch).TransformAgainst are carved
//     from the scratch arena and remain valid until the next Reset. Callers
//     that outlive the merge must copy (Log.Commit already does).
//   - Operation values themselves are ordinary heap values, never
//     arena-owned: committed histories alias them indefinitely.
//   - The package-level TransformAgainst returns caller-owned slices and is
//     safe to use without any lifetime discipline.

import "sync"

// MergeScratch is a reusable transform arena. The zero value is ready to
// use; see NewMergeScratch. Not safe for concurrent use.
type MergeScratch struct {
	batch  batchScratch
	aS, bS []shapeOp
	arena  []Op
}

// NewMergeScratch returns an empty scratch arena.
func NewMergeScratch() *MergeScratch { return &MergeScratch{} }

// Reset invalidates every slice previously returned by this scratch's
// TransformAgainst and recycles the arena for the next merge. References
// held by the arena are cleared so recycled scratches do not pin merged
// payloads.
func (sc *MergeScratch) Reset() {
	clear(sc.arena)
	sc.arena = sc.arena[:0]
}

var scratchPool = sync.Pool{New: func() any { return &MergeScratch{} }}

// toShapes is toShapeOps into the scratch's unwrap buffers.
func (sc *MergeScratch) toShapes(a, b []Op) (aS, bS []shapeOp, ok bool) {
	aS = sc.aS[:0]
	for _, op := range a {
		s, sOK := shapeOpOf(op)
		if !sOK {
			return nil, nil, false
		}
		aS = append(aS, s)
	}
	bS = sc.bS[:0]
	for _, op := range b {
		s, sOK := shapeOpOf(op)
		if !sOK {
			return nil, nil, false
		}
		bS = append(bS, s)
	}
	sc.aS, sc.bS = aS, bS
	return aS, bS, true
}

// carve materializes transformed shapes into a result slice: a fresh
// caller-owned slice when owned, an arena window valid until Reset
// otherwise. Empty input yields nil either way.
func (sc *MergeScratch) carve(shapes []shapeOp, owned bool) []Op {
	if len(shapes) == 0 {
		return nil
	}
	if owned {
		out := make([]Op, len(shapes))
		for i, s := range shapes {
			out[i] = s.materialize()
		}
		return out
	}
	start := len(sc.arena)
	for _, s := range shapes {
		sc.arena = append(sc.arena, s.materialize())
	}
	return sc.arena[start:len(sc.arena):len(sc.arena)]
}

// TransformAgainst is TransformAgainst with arena-backed results: the
// returned slice is owned by the scratch and valid until the next Reset.
// The merge loop commits (copies) transformed operations immediately, so
// the window lifetime never escapes a merge.
func (sc *MergeScratch) TransformAgainst(client, server []Op) []Op {
	return transformAgainstScratch(client, server, sc, false)
}

// transformAgainstScratch is the shared core of the package-level and
// arena TransformAgainst. owned selects fresh result slices over arena
// windows.
func transformAgainstScratch(client, server []Op, sc *MergeScratch, owned bool) []Op {
	if len(client) == 0 || len(server) == 0 {
		return client
	}
	if len(client) == 1 && len(server) == 1 {
		// Single grid cell, checked before the family scans: one
		// closed-form pairwise transform, and the untouched-client case
		// returns the input slice itself. The smallest merges — one
		// coalesced run against one coalesced run — resolve here without
		// touching the unwrap buffers. Identical to the general walk by
		// construction (the walk's cells run the same transform).
		if a, okA := shapeOpOf(client[0]); okA {
			if b, okB := shapeOpOf(server[0]); okB {
				r := transformSeqShape(a.shape, b.shape, true)
				if r.n == 1 && r.shapes[0] == a.shape {
					return client
				}
				var buf [2]shapeOp
				out := buf[:0]
				for _, sh := range r.shapes[:r.n] {
					out = append(out, shapeOp{shape: sh, src: client[0]})
				}
				return sc.carve(out, owned)
			}
		}
	}
	var dst []Op
	if !owned {
		dst = sc.arena
	}
	if out, ok := transformScalarFastInto(client, server, dst); ok {
		return sc.window(out, owned)
	}
	if out, ok := transformSetFastInto(client, server, dst); ok {
		return sc.window(out, owned)
	}
	if aS, bS, ok := sc.toShapes(client, server); ok {
		var outShapes []shapeOp
		if batchedTransform.Load() {
			sc.batch.transformRuns(aS, bS)
			outShapes = sc.batch.aOut
		} else {
			outShapes, _ = transformShapeSeqs(aS, bS)
		}
		return sc.carve(outShapes, owned)
	}
	aT, _ := TransformSeqs(client, server)
	return aT
}

// window finalizes a fast-path result produced by appending onto dst: in
// arena mode the appended suffix becomes the result window; in owned mode
// the slice is already caller-owned.
func (sc *MergeScratch) window(out []Op, owned bool) []Op {
	if owned {
		return out
	}
	start := len(sc.arena)
	sc.arena = out
	return sc.arena[start:len(sc.arena):len(sc.arena)]
}

package ot

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func leaf(v any) *TreeNode { return &TreeNode{Value: v} }

func node(v any, children ...*TreeNode) *TreeNode {
	return &TreeNode{Value: v, Children: children}
}

// renderTree serializes a tree for comparisons.
func renderTree(n *TreeNode) string {
	if n == nil {
		return "·"
	}
	if len(n.Children) == 0 {
		return fmt.Sprintf("%v", n.Value)
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = renderTree(c)
	}
	return fmt.Sprintf("%v(%s)", n.Value, strings.Join(parts, " "))
}

func mustApplyTree(t *testing.T, root *TreeNode, ops ...Op) *TreeNode {
	t.Helper()
	var err error
	for _, op := range ops {
		root, err = ApplyTree(root, op)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
	}
	return root
}

func sampleTree() *TreeNode {
	return node("root",
		node("a", leaf("a0"), leaf("a1")),
		node("b", leaf("b0")),
		leaf("c"),
	)
}

func TestApplyTreeBasics(t *testing.T) {
	root := sampleTree()
	root = mustApplyTree(t, root,
		TreeInsert{Path: []int{1}, Subtree: leaf("x")},
		TreeDelete{Path: []int{0, 1}},
		TreeSet{Path: []int{3}, Value: "C"},
	)
	want := "root(a(a0) x b(b0) C)"
	if got := renderTree(root); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestApplyTreeErrors(t *testing.T) {
	for _, op := range []Op{
		TreeInsert{Path: nil, Subtree: leaf("x")},
		TreeInsert{Path: []int{9, 0}, Subtree: leaf("x")},
		TreeInsert{Path: []int{4}, Subtree: leaf("x")},
		TreeDelete{Path: nil},
		TreeDelete{Path: []int{7}},
		TreeSet{Path: []int{0, 5}, Value: 1},
	} {
		if _, err := ApplyTree(sampleTree(), op); err == nil {
			t.Errorf("apply %v: want error", op)
		}
	}
	if _, err := ApplyTree(sampleTree(), CounterAdd{Delta: 1}); err == nil {
		t.Errorf("applying counter op to tree should fail")
	}
}

func TestApplyTreeInsertClonesSubtree(t *testing.T) {
	sub := node("s", leaf("s0"))
	root := mustApplyTree(t, sampleTree(), TreeInsert{Path: []int{0}, Subtree: sub})
	sub.Children[0].Value = "mutated"
	if got := renderTree(root); strings.Contains(got, "mutated") {
		t.Fatalf("inserted subtree aliases the op payload: %s", got)
	}
}

func TestTreeSiblingShift(t *testing.T) {
	// A inserts at /1 while B deletes /0: B's deletion must not hit the
	// wrong sibling, A's insertion must land between the right neighbors.
	base := sampleTree()
	a := TreeInsert{Path: []int{1}, Subtree: leaf("x")}
	b := TreeDelete{Path: []int{0}}
	aT, bT := TransformPair(Op(a), Op(b))
	left := renderTree(mustApplyTree(t, mustApplyTree(t, CloneTree(base), a), bT...))
	right := renderTree(mustApplyTree(t, mustApplyTree(t, CloneTree(base), b), aT...))
	if left != right {
		t.Fatalf("diverged: left=%s right=%s", left, right)
	}
	if want := "root(x b(b0) c)"; left != want {
		t.Fatalf("got %s, want %s", left, want)
	}
}

func TestTreeDeleteAncestorAbsorbs(t *testing.T) {
	a := TreeSet{Path: []int{0, 1}, Value: "X"}
	b := TreeDelete{Path: []int{0}}
	if got := a.Transform(b, true); len(got) != 0 {
		t.Fatalf("op inside deleted subtree should be absorbed, got %v", got)
	}
	// The delete itself survives a set inside it.
	if got := b.Transform(a, false); len(got) != 1 {
		t.Fatalf("delete should survive interior set, got %v", got)
	}
}

func TestTreeDeleteDeleteSameNode(t *testing.T) {
	a := TreeDelete{Path: []int{1}}
	b := TreeDelete{Path: []int{1}}
	if got := a.Transform(b, true); len(got) != 0 {
		t.Fatalf("identical deletes should be absorbed, got %v", got)
	}
}

func TestTreeInsertTie(t *testing.T) {
	base := sampleTree()
	a := TreeInsert{Path: []int{1}, Subtree: leaf("A")}
	b := TreeInsert{Path: []int{1}, Subtree: leaf("B")}
	aT, bT := TransformPair(Op(a), Op(b))
	left := renderTree(mustApplyTree(t, mustApplyTree(t, CloneTree(base), a), bT...))
	right := renderTree(mustApplyTree(t, mustApplyTree(t, CloneTree(base), b), aT...))
	if left != right {
		t.Fatalf("diverged: left=%s right=%s", left, right)
	}
	if !strings.Contains(left, "B A") {
		t.Fatalf("priority insert should precede: %s", left)
	}
}

func TestTreeSetSetConflict(t *testing.T) {
	base := sampleTree()
	a := TreeSet{Path: []int{2}, Value: "child"}
	b := TreeSet{Path: []int{2}, Value: "parent"}
	aT, bT := TransformPair(Op(a), Op(b))
	left := renderTree(mustApplyTree(t, mustApplyTree(t, CloneTree(base), a), bT...))
	right := renderTree(mustApplyTree(t, mustApplyTree(t, CloneTree(base), b), aT...))
	if left != right {
		t.Fatalf("diverged: left=%s right=%s", left, right)
	}
	if !strings.Contains(left, "parent") || strings.Contains(left, "child") {
		t.Fatalf("priority write should win: %s", left)
	}
}

// randomTree builds a small random tree and returns it along with the list
// of every node path (for op generation).
func randomTree(r *rand.Rand, depth int) *TreeNode {
	n := &TreeNode{Value: r.Intn(100)}
	if depth <= 0 {
		return n
	}
	kids := r.Intn(3)
	for i := 0; i < kids; i++ {
		n.Children = append(n.Children, randomTree(r, depth-1))
	}
	return n
}

func allPaths(n *TreeNode, prefix []int, out *[][]int) {
	p := append([]int(nil), prefix...)
	*out = append(*out, p)
	for i, c := range n.Children {
		allPaths(c, append(prefix, i), out)
	}
}

func randomTreeOp(r *rand.Rand, root *TreeNode) Op {
	var paths [][]int
	allPaths(root, nil, &paths)
	switch r.Intn(3) {
	case 0: // insert under a random node
		parent := paths[r.Intn(len(paths))]
		n, _ := treeNodeAt(root, parent)
		idx := r.Intn(len(n.Children) + 1)
		return TreeInsert{Path: append(append([]int(nil), parent...), idx), Subtree: leaf(r.Intn(100))}
	case 1: // delete a random non-root node, if any
		if len(paths) == 1 {
			return TreeSet{Path: nil, Value: r.Intn(100)}
		}
		p := paths[1+r.Intn(len(paths)-1)]
		return TreeDelete{Path: p}
	default:
		return TreeSet{Path: paths[r.Intn(len(paths))], Value: r.Intn(100)}
	}
}

func TestTP1Tree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomTree(r, 3)
		a := randomTreeOp(r, base)
		b := randomTreeOp(r, base)
		aT, bT := TransformPair(a, b)

		apply := func(first Op, rest []Op) (string, error) {
			root := CloneTree(base)
			root, err := ApplyTree(root, first)
			if err != nil {
				return "", err
			}
			for _, op := range rest {
				root, err = ApplyTree(root, op)
				if err != nil {
					return "", err
				}
			}
			return renderTree(root), nil
		}
		left, err := apply(a, bT)
		if err != nil {
			t.Logf("seed %d: left: %v (a=%v b=%v)", seed, err, a, b)
			return false
		}
		right, err := apply(b, aT)
		if err != nil {
			t.Logf("seed %d: right: %v (a=%v b=%v)", seed, err, a, b)
			return false
		}
		if left != right {
			t.Logf("seed %d: base=%s a=%v b=%v left=%s right=%s", seed, renderTree(base), a, b, left, right)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneTree(t *testing.T) {
	orig := sampleTree()
	c := CloneTree(orig)
	c.Children[0].Value = "changed"
	c.Children[0].Children[0].Value = "changed"
	if renderTree(orig) != "root(a(a0 a1) b(b0) c)" {
		t.Fatalf("clone aliases original: %s", renderTree(orig))
	}
	if CloneTree(nil) != nil {
		t.Fatalf("clone of nil should be nil")
	}
}

func TestTreeOpStrings(t *testing.T) {
	if got := (TreeInsert{Path: []int{1, 2}}).String(); got != "tins(/1/2)" {
		t.Errorf("got %q", got)
	}
	if got := (TreeDelete{Path: []int{0}}).String(); got != "tdel(/0)" {
		t.Errorf("got %q", got)
	}
	if got := (TreeSet{Path: []int{0}, Value: 7}).String(); got != "tset(/0,7)" {
		t.Errorf("got %q", got)
	}
}

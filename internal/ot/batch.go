package ot

// This file is the batched (run-length) transform engine: the second tier
// of the fast path started in control_fast.go. Structure logs are not just
// homogeneous in operation family — they are overwhelmingly *runs*: a task
// that appends 1000 elements records 1000 inserts at adjacent positions; a
// queue consumer records 1000 deletions at position 0. The pairwise shape
// engine still walks the full O(n·m) grid over such histories even though
// every cell does the same thing.
//
// The batched engine coalesces contiguous same-role operations into
// composite run-ops and walks the grid at run granularity. A cell of the
// run grid — one client run against one server run — is resolved by a
// closed-form rigid translation whenever the runs do not genuinely
// interleave (runCellUniform); only interleaving cells are "exploded" back
// to their constituent operations and handed to the exact pairwise
// machinery. Both engines therefore produce *identical* operation
// sequences — not merely equivalent ones — which is what the differential
// property tests and FuzzBatchedTransform pin.
//
// Correctness sketch (the TP1 argument): a uniform cell's deltas are
// derived from the GOT identities the pairwise walk implements,
//
//	T(A1·A2, B) = T(A1, B) · T(A2, T(B, A1))
//	T(A, B1·B2) = T(T(A, B1), B2)
//
// specialized to runs. For each role pair the guard condition guarantees,
// by induction over the cell's internal pairwise grid, that every client
// constituent is transformed to a rigid shift by the same delta and every
// server constituent likewise (see the case analysis in runCellUniform).
// Because a run is transformed exactly as its constituents would have
// been, TP1 of the pairwise algebra carries over unchanged.

import "sync/atomic"

// batchedTransform gates the run-length engine. On by default; tests and
// ablation benchmarks disable it to fall back to (and compare against) the
// pairwise shape engine.
var batchedTransform atomic.Bool

func init() { batchedTransform.Store(true) }

// SetBatchedTransform enables or disables the batched run-length transform
// engine and reports the previous setting. Results are bit-identical
// either way; the switch exists for differential testing and ablation.
func SetBatchedTransform(on bool) bool { return batchedTransform.Swap(on) }

// seqRun is a coalesced run of contiguous same-role sequence operations:
// an append/typing run (inserts at exactly adjacent positions), a pop run
// (deletions at one position) or an ascending overwrite run. pos/n is the
// composite shape as currently transformed; orig is the composite start
// position at coalescing time, so pos-orig is the rigid shift to apply to
// each constituent. lo:hi indexes the constituents in the owning side's
// arena. Uniform cells only ever translate a run (n never changes); any
// outcome that would bend a run — splits, absorption, interleaving —
// explodes it back to constituents first.
type seqRun struct {
	role   seqRole
	pos    int
	n      int
	orig   int
	lo, hi int32
}

// coalesceRuns folds a shape sequence into runs. Inserts extend a run when
// they land exactly at its current end (appends, left-to-right typing);
// deletions when they repeat the run's position (pops, deleting a block
// front-to-back); overwrites when they write the next adjacent slot.
// Anything else starts a new run, so a lone operation is a singleton run
// and the walk degrades gracefully to the pairwise grid.
func coalesceRuns(sh []shapeOp, dst []seqRun) []seqRun {
	for i := range sh {
		s := sh[i].shape
		if k := len(dst) - 1; k >= 0 {
			r := &dst[k]
			if r.role == s.role && int(r.hi) == i {
				switch s.role {
				case roleInsert, roleSet:
					if s.pos == r.pos+r.n {
						r.n += s.n
						r.hi++
						continue
					}
				case roleDelete:
					if s.pos == r.pos {
						r.n += s.n
						r.hi++
						continue
					}
				}
			}
		}
		dst = append(dst, seqRun{role: s.role, pos: s.pos, n: s.n, orig: s.pos, lo: int32(i), hi: int32(i + 1)})
	}
	return dst
}

// runCellUniform decides one cell of the run grid: client run a against
// server run b (priority side). ok reports a closed form — a rigid
// translation of a by dA and of b by dB covering every constituent — and
// is false when the runs genuinely interleave, which sends the cell to
// explodeCell.
//
// Guards are derived per role pair; (pa,na) is a's composite, (qb,mb) is
// b's. The recurring induction: when b's run starts at or before pa, its
// j-th constituent lands at qb+prefix ≤ pa+prefix, which is exactly the
// client run's base after the preceding shifts, so every cell of the
// internal grid resolves the same way (ties break toward the server).
// Symmetrically when b starts at or past the client run's end pa+na. A
// server run that starts strictly inside (pa, pa+na) interleaves.
func runCellUniform(a, b seqRun) (dA, dB int, ok bool) {
	pa, na, qb, mb := a.pos, a.n, b.pos, b.n
	switch a.role {
	case roleInsert:
		switch b.role {
		case roleInsert:
			// Ties included: the server run wins, the whole client run lands
			// after it (the parent-appends-vs-child-appends showcase).
			if qb <= pa {
				return mb, 0, true
			}
			if qb >= pa+na {
				return 0, na, true
			}
		case roleDelete:
			if qb+mb <= pa {
				return -mb, 0, true
			}
			if qb >= pa+na {
				return 0, na, true
			}
		case roleSet:
			// Overwrites never move the client inserts; they shift past them
			// exactly when they start at or after the insertion base.
			if qb >= pa {
				return 0, na, true
			}
			if qb+mb <= pa {
				return 0, 0, true
			}
		}
	case roleDelete:
		switch b.role {
		case roleInsert:
			if qb <= pa {
				return mb, 0, true
			}
			if qb >= pa+na {
				return 0, -na, true
			}
		case roleDelete:
			if qb+mb <= pa {
				return -mb, 0, true
			}
			if qb >= pa+na {
				return 0, -na, true
			}
		case roleSet:
			if qb+mb <= pa {
				return 0, 0, true
			}
			if qb >= pa+na {
				return 0, -na, true
			}
		}
	case roleSet:
		switch b.role {
		case roleInsert:
			if qb <= pa {
				return mb, 0, true
			}
			if qb >= pa+na {
				return 0, 0, true
			}
		case roleDelete:
			if qb+mb <= pa {
				return -mb, 0, true
			}
			if qb >= pa+na {
				return 0, 0, true
			}
		case roleSet:
			if qb+mb <= pa || qb >= pa+na {
				return 0, 0, true
			}
		}
	}
	return 0, 0, false
}

// batchScratch holds every buffer of one run-grid walk, reused across
// transforms via MergeScratch pooling. aCons/bCons are the constituent
// arenas: the original shapes first, explosion results appended after, so
// runs reference stable indices even as the arenas grow.
type batchScratch struct {
	aCons, bCons           []shapeOp
	aRuns, bRunsA, bRunsB  []seqRun
	xCur, xAlt, yCur, yAlt []seqRun
	xsh, ysh               []shapeOp
	aOut                   []shapeOp
}

// appendRunShapes materializes a run's constituents — original shapes plus
// the run's rigid shift — onto dst.
func appendRunShapes(dst []shapeOp, r seqRun, cons []shapeOp) []shapeOp {
	d := r.pos - r.orig
	for _, s := range cons[r.lo:r.hi] {
		s.shape.pos += d
		dst = append(dst, s)
	}
	return dst
}

// explodeCell dissolves an interleaving cell: both runs are materialized
// back to constituents and handed to the exact pairwise shape engine, and
// every resulting shape re-enters the walk as a singleton run. This is the
// split-back path — it runs only when runs genuinely interleave, and its
// output is exactly what the pairwise engine would have produced for the
// same cell.
func (sc *batchScratch) explodeCell(x, y seqRun, xDst, ysDst []seqRun) ([]seqRun, []seqRun) {
	sc.xsh = appendRunShapes(sc.xsh[:0], x, sc.aCons)
	sc.ysh = appendRunShapes(sc.ysh[:0], y, sc.bCons)
	aT, bT := transformShapeSeqs(sc.xsh, sc.ysh)
	for _, s := range aT {
		idx := int32(len(sc.aCons))
		sc.aCons = append(sc.aCons, s)
		xDst = append(xDst, seqRun{role: s.shape.role, pos: s.shape.pos, n: s.shape.n, orig: s.shape.pos, lo: idx, hi: idx + 1})
	}
	for _, s := range bT {
		idx := int32(len(sc.bCons))
		sc.bCons = append(sc.bCons, s)
		ysDst = append(ysDst, seqRun{role: s.shape.role, pos: s.shape.pos, n: s.shape.n, orig: s.shape.pos, lo: idx, hi: idx + 1})
	}
	return xDst, ysDst
}

// mutualRunVsSeq transforms the single client run x against the server run
// sequence ys and vice versa — the run-granular mirror of mutualOneVsSeq.
func (sc *batchScratch) mutualRunVsSeq(x seqRun, ys []seqRun, xDst, ysDst []seqRun) ([]seqRun, []seqRun) {
	switch len(ys) {
	case 0:
		return append(xDst, x), ysDst
	case 1:
		y := ys[0]
		if dA, dB, ok := runCellUniform(x, y); ok {
			x.pos += dA
			y.pos += dB
			return append(xDst, x), append(ysDst, y)
		}
		return sc.explodeCell(x, y, xDst, ysDst)
	}
	var xb, xb2 [4]seqRun
	xList := append(xb[:0], x)
	xAlt := xb2[:0]
	for _, yk := range ys {
		var yb, yb2 [4]seqRun
		ykList := append(yb[:0], yk)
		ykAlt := yb2[:0]
		xAlt = xAlt[:0]
		for _, xi := range xList {
			ykAlt = ykAlt[:0]
			xAlt, ykAlt = sc.mutualRunVsSeq(xi, ykList, xAlt, ykAlt)
			ykList, ykAlt = ykAlt, ykList
		}
		xList, xAlt = xAlt, xList
		ysDst = append(ysDst, ykList...)
	}
	return append(xDst, xList...), ysDst
}

// transformRuns is transformShapeSeqs at run granularity: it coalesces
// both shape sequences into runs, walks the run grid left to right with
// the same ping-pong discipline, and leaves the transformed client shapes
// in sc.aOut and the transformed server runs in the returned slice (the
// caller materializes them only when it needs the server side). The output
// is operation-for-operation identical to transformShapeSeqs.
func (sc *batchScratch) transformRuns(aS, bS []shapeOp) (bFinal []seqRun) {
	sc.aCons = append(sc.aCons[:0], aS...)
	sc.bCons = append(sc.bCons[:0], bS...)
	sc.aRuns = coalesceRuns(sc.aCons, sc.aRuns[:0])
	bCur := coalesceRuns(sc.bCons, sc.bRunsA[:0])
	bNext := sc.bRunsB[:0]
	sc.aOut = sc.aOut[:0]
	xCur, xAlt := sc.xCur[:0], sc.xAlt[:0]
	yCur, yAlt := sc.yCur[:0], sc.yAlt[:0]
	for ai := range sc.aRuns {
		xCur = append(xCur[:0], sc.aRuns[ai])
		bNext = bNext[:0]
		for bi := range bCur {
			yCur = append(yCur[:0], bCur[bi])
			xAlt = xAlt[:0]
			for xi := 0; xi < len(xCur); xi++ {
				yAlt = yAlt[:0]
				xAlt, yAlt = sc.mutualRunVsSeq(xCur[xi], yCur, xAlt, yAlt)
				yCur, yAlt = yAlt, yCur
			}
			xCur, xAlt = xAlt, xCur
			bNext = append(bNext, yCur...)
		}
		for _, r := range xCur {
			sc.aOut = appendRunShapes(sc.aOut, r, sc.aCons)
		}
		bCur, bNext = bNext, bCur
	}
	// Hand the rotating buffers back so the next walk reuses whatever they
	// grew to, regardless of how many swaps happened.
	sc.xCur, sc.xAlt, sc.yCur, sc.yAlt = xCur, xAlt, yCur, yAlt
	sc.bRunsA, sc.bRunsB = bCur, bNext
	return bCur
}

package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTransformSeqsEmpty(t *testing.T) {
	a := []Op{SeqInsert{Pos: 0, Elems: list(1)}}
	aT, bT := TransformSeqs(a, nil)
	if !reflect.DeepEqual(aT, a) || len(bT) != 0 {
		t.Fatalf("transform against empty changed ops: %v %v", aT, bT)
	}
	aT, bT = TransformSeqs(nil, a)
	if len(aT) != 0 || !reflect.DeepEqual(bT, a) {
		t.Fatalf("transform of empty changed ops: %v %v", aT, bT)
	}
}

// TestMergeOrderMatters verifies the paper's observation that in general
// merge(x, y) != merge(y, x): the merge order decides conflicting writes.
func TestMergeOrderMatters(t *testing.T) {
	base := list("v")
	x := []Op{SeqSet{Pos: 0, Elem: "x"}}
	y := []Op{SeqSet{Pos: 0, Elem: "y"}}

	// merge(x, y): x first (priority), then y transformed against x.
	yT := TransformAgainst(y, x)
	mergeXY, err := applyAll(base, append(append([]Op{}, x...), yT...))
	if err != nil {
		t.Fatal(err)
	}
	// merge(y, x): y first (priority), then x transformed against y.
	xT := TransformAgainst(x, y)
	mergeYX, err := applyAll(base, append(append([]Op{}, y...), xT...))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(mergeXY, mergeYX) {
		t.Fatalf("merge order should matter for conflicting writes, both = %v", mergeXY)
	}
	if mergeXY[0] != "x" || mergeYX[0] != "y" {
		t.Fatalf("the earlier-merged side should win: %v / %v", mergeXY, mergeYX)
	}
}

// TestThreeWayMergeLinearHistory simulates the runtime's actual shape: a
// parent history grows linearly while several children are transformed
// against the suffix they have not seen. All interleavings must converge.
func TestThreeWayMergeLinearHistory(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomState(r)

		// Three children derive ops from the same base.
		children := make([][]Op, 3)
		for i := range children {
			cur := append([]any(nil), base...)
			k := r.Intn(4)
			for j := 0; j < k; j++ {
				op := randomSeqOp(r, len(cur))
				next, err := ApplySeq(cur, op)
				if err != nil {
					break
				}
				cur = next
				children[i] = append(children[i], op)
			}
		}

		// Merge them in order 0,1,2 against a growing committed history.
		var history []Op
		state := append([]any(nil), base...)
		for _, ops := range children {
			transformed := TransformAgainst(ops, history)
			var err error
			for _, op := range transformed {
				state, err = ApplySeq(state, op)
				if err != nil {
					t.Logf("seed %d: apply failed: %v", seed, err)
					return false
				}
			}
			history = append(history, transformed...)
		}

		// Replaying the committed history from base must give the same state.
		replay, err := applyAll(base, history)
		if err != nil {
			t.Logf("seed %d: replay failed: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(replay, state) {
			t.Logf("seed %d: replay=%v state=%v", seed, replay, state)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformAgainstDeterministic(t *testing.T) {
	client := []Op{SeqInsert{Pos: 1, Elems: list("c")}, SeqDelete{Pos: 0, N: 1}}
	server := []Op{SeqDelete{Pos: 1, N: 2}, SeqInsert{Pos: 0, Elems: list("s")}}
	first := TransformAgainst(client, server)
	for i := 0; i < 50; i++ {
		if got := TransformAgainst(client, server); !reflect.DeepEqual(got, first) {
			t.Fatalf("TransformAgainst is not deterministic: %v vs %v", got, first)
		}
	}
}

func TestConcatOps(t *testing.T) {
	a := []Op{SeqDelete{Pos: 0, N: 1}}
	b := []Op{SeqDelete{Pos: 1, N: 1}}
	if got := concatOps(nil, b); !reflect.DeepEqual(got, b) {
		t.Fatalf("concat(nil,b) = %v", got)
	}
	if got := concatOps(a, nil); !reflect.DeepEqual(got, a) {
		t.Fatalf("concat(a,nil) = %v", got)
	}
	if got := concatOps(a, b); len(got) != 2 {
		t.Fatalf("concat(a,b) = %v", got)
	}
}

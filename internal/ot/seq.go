package ot

// This file implements the shared index arithmetic for the sequence family
// (list, queue and text operations). The concrete operation types in list.go
// and text.go reduce themselves to a position/length skeleton, run the
// transformation here, and rebuild concrete operations from the result.

// seqRole distinguishes the three sequence operation roles.
type seqRole uint8

const (
	roleInsert seqRole = iota
	roleDelete
	roleSet
)

// seqShape is the payload-free skeleton of a sequence operation: an insert
// of length n at pos, a deletion of n elements starting at pos, or an
// overwrite of the single element at pos.
type seqShape struct {
	role seqRole
	pos  int
	n    int
}

// seqResult describes the outcome of transforming one sequence operation
// against another. The original operation maps onto zero, one or two
// shapes. For inserts and sets the payload is carried over unchanged by the
// caller; splits only ever happen to deletions, which carry no payload.
//
// The shapes live in an inline array rather than a heap slice: a pairwise
// transform runs once per operation pair of the quadratic control
// algorithm, so keeping its result off the heap removes the single largest
// allocation source of a merge.
type seqResult struct {
	shapes [2]seqShape
	n      int
}

func one(s seqShape) seqResult    { return seqResult{shapes: [2]seqShape{s, {}}, n: 1} }
func two(a, b seqShape) seqResult { return seqResult{shapes: [2]seqShape{a, b}, n: 2} }
func none() seqResult             { return seqResult{} }
func ins(pos, n int) seqShape     { return seqShape{role: roleInsert, pos: pos, n: n} }
func del(pos, n int) seqShape     { return seqShape{role: roleDelete, pos: pos, n: n} }
func set(pos int) seqShape        { return seqShape{role: roleSet, pos: pos, n: 1} }

// transformSeqShape rewrites shape a so that it applies after shape b,
// preserving a's intention. bPriority breaks ties in b's favor.
//
// The rules are the classic list/text OT transformation functions:
//
//   - insert vs insert: the later position shifts right; equal positions are
//     ordered by priority.
//   - insert vs delete: an insert inside the deleted range collapses onto
//     the deletion point; inserts after the range shift left.
//   - delete vs insert: a deletion spanning the insertion point splits in
//     two so the inserted elements survive.
//   - delete vs delete: the overlap has already been deleted and is removed
//     from a's range (possibly absorbing a completely).
//   - set vs delete: overwriting a deleted element is absorbed.
//   - set vs set at the same index: the priority side wins; the other op is
//     absorbed so both merge orders converge (TP1).
func transformSeqShape(a, b seqShape, bPriority bool) seqResult {
	switch b.role {
	case roleInsert:
		return transformAgainstInsert(a, b, bPriority)
	case roleDelete:
		return transformAgainstDelete(a, b)
	case roleSet:
		return transformAgainstSet(a, b, bPriority)
	}
	return one(a)
}

func transformAgainstInsert(a, b seqShape, bPriority bool) seqResult {
	switch a.role {
	case roleInsert:
		if b.pos < a.pos || (b.pos == a.pos && bPriority) {
			a.pos += b.n
		}
		return one(a)
	case roleDelete:
		switch {
		case b.pos <= a.pos:
			a.pos += b.n
			return one(a)
		case b.pos >= a.pos+a.n:
			return one(a)
		default:
			// The insertion lands strictly inside the range a intended to
			// delete. Keep the inserted elements alive by splitting the
			// deletion around them. The second part's position accounts for
			// the first part having been applied already.
			left := b.pos - a.pos
			return two(del(a.pos, left), del(a.pos+b.n, a.n-left))
		}
	case roleSet:
		if b.pos <= a.pos {
			a.pos += b.n
		}
		return one(a)
	}
	return one(a)
}

func transformAgainstDelete(a, b seqShape) seqResult {
	bEnd := b.pos + b.n
	switch a.role {
	case roleInsert:
		switch {
		case a.pos <= b.pos:
			return one(a)
		case a.pos >= bEnd:
			a.pos -= b.n
			return one(a)
		default:
			// Insertion point was deleted; collapse onto the deletion point.
			a.pos = b.pos
			return one(a)
		}
	case roleDelete:
		aEnd := a.pos + a.n
		if aEnd <= b.pos { // a entirely before b
			return one(a)
		}
		if a.pos >= bEnd { // a entirely after b
			a.pos -= b.n
			return one(a)
		}
		// Ranges overlap: drop the part b already deleted. The survivors
		// (a head before b and/or a tail after b) are contiguous once b has
		// been applied.
		head := 0
		if a.pos < b.pos {
			head = b.pos - a.pos
		}
		tail := 0
		if aEnd > bEnd {
			tail = aEnd - bEnd
		}
		if head+tail == 0 {
			return none()
		}
		start := a.pos
		if b.pos < start {
			start = b.pos
		}
		return one(del(start, head+tail))
	case roleSet:
		switch {
		case a.pos < b.pos:
			return one(a)
		case a.pos >= bEnd:
			a.pos -= b.n
			return one(a)
		default:
			// The element a wanted to overwrite no longer exists.
			return none()
		}
	}
	return one(a)
}

func transformAgainstSet(a, b seqShape, bPriority bool) seqResult {
	if a.role == roleSet && a.pos == b.pos && bPriority {
		// Concurrent writes to the same slot: the priority side wins, the
		// other write is absorbed so both merge orders agree.
		return none()
	}
	return one(a)
}

package ot

import "fmt"

// TextInsert inserts Text before rune position Pos of a text buffer.
//
// Text operations address runes, not bytes, so collaborative edits stay
// meaningful for non-ASCII content.
type TextInsert struct {
	Pos  int
	Text string
}

// TextDelete removes N runes starting at rune position Pos.
type TextDelete struct {
	Pos int
	N   int
}

// Kind implements Op.
func (o TextInsert) Kind() Kind { return KindTextInsert }

// Kind implements Op.
func (o TextDelete) Kind() Kind { return KindTextDelete }

func (o TextInsert) String() string { return fmt.Sprintf("ins(%d,%q)", o.Pos, o.Text) }

func (o TextDelete) String() string {
	if o.N == 1 {
		return fmt.Sprintf("del(%d)", o.Pos)
	}
	return fmt.Sprintf("del(%d,n=%d)", o.Pos, o.N)
}

func textShapeOf(o Op) (seqShape, bool) {
	switch v := o.(type) {
	case TextInsert:
		return ins(v.Pos, len([]rune(v.Text))), true
	case TextDelete:
		return del(v.Pos, v.N), true
	}
	return seqShape{}, false
}

// Transform implements Op.
func (o TextInsert) Transform(other Op, otherPriority bool) []Op {
	b, ok := textShapeOf(other)
	if !ok {
		mismatch(o, other)
	}
	a, _ := textShapeOf(o)
	r := transformSeqShape(a, b, otherPriority)
	ops := make([]Op, 0, r.n)
	for _, s := range r.shapes[:r.n] {
		ops = append(ops, TextInsert{Pos: s.pos, Text: o.Text})
	}
	return ops
}

// Transform implements Op.
func (o TextDelete) Transform(other Op, otherPriority bool) []Op {
	b, ok := textShapeOf(other)
	if !ok {
		mismatch(o, other)
	}
	a, _ := textShapeOf(o)
	r := transformSeqShape(a, b, otherPriority)
	ops := make([]Op, 0, r.n)
	for _, s := range r.shapes[:r.n] {
		ops = append(ops, TextDelete{Pos: s.pos, N: s.n})
	}
	return ops
}

// ApplyText applies a text operation to a rune slice and returns the
// updated runes. The mergeable text structure stores its content as runes
// so repeated operations avoid re-decoding UTF-8.
func ApplyText(r []rune, op Op) ([]rune, error) {
	switch v := op.(type) {
	case TextInsert:
		if v.Pos < 0 || v.Pos > len(r) {
			return r, fmt.Errorf("ot: %s out of range for length %d", v, len(r))
		}
		insRunes := []rune(v.Text)
		out := make([]rune, 0, len(r)+len(insRunes))
		out = append(out, r[:v.Pos]...)
		out = append(out, insRunes...)
		out = append(out, r[v.Pos:]...)
		return out, nil
	case TextDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > len(r) {
			return r, fmt.Errorf("ot: %s out of range for length %d", v, len(r))
		}
		out := make([]rune, 0, len(r)-v.N)
		out = append(out, r[:v.Pos]...)
		out = append(out, r[v.Pos+v.N:]...)
		return out, nil
	}
	return r, fmt.Errorf("ot: %s is not a text operation", op.Kind())
}

package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestScalarFastPathMatchesGeneric pins the keyed O(n+m) scalar transform
// against the general recursion: identical effects on identical states,
// for random single-family sequences (the runtime's shape).
func TestScalarFastPathMatchesGeneric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pick := r.Intn(4)
		gen := func(n int) []Op {
			var ops []Op
			for len(ops) < n {
				op := randomScalarOp(r)
				keep := false
				switch op.Kind() {
				case KindCounterAdd:
					keep = pick == 0
				case KindMapSet, KindMapDelete:
					keep = pick == 1
				case KindSetAdd, KindSetRemove:
					keep = pick == 2
				case KindRegisterSet:
					keep = pick == 3
				}
				if keep {
					ops = append(ops, op)
				}
			}
			return ops
		}
		client := gen(r.Intn(8))
		server := gen(r.Intn(8))

		fast, ok := transformScalarFast(client, server)
		if !ok {
			t.Logf("seed %d: fast path refused scalar input", seed)
			return false
		}
		slow, _ := TransformSeqs(client, server)

		base := newScalarModel()
		base.apply(MapSet{Key: "k1", Value: 0}, SetAdd{Elem: "k1"}, RegisterSet{Value: -1})
		base.apply(server...)
		a := base.clone()
		a.apply(fast...)
		b := base.clone()
		b.apply(slow...)
		if !a.equal(b) {
			t.Logf("seed %d: client=%v server=%v fast=%v slow=%v", seed, client, server, fast, slow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestScalarFastPathFallsBack confirms positional and mixed inputs refuse
// the fast path.
func TestScalarFastPathFallsBack(t *testing.T) {
	seqOp := []Op{SeqInsert{Pos: 0, Elems: list(1)}}
	scalarOp := []Op{CounterAdd{Delta: 1}}
	if _, ok := transformScalarFast(seqOp, scalarOp); ok {
		t.Fatal("positional client must fall back")
	}
	if _, ok := transformScalarFast(scalarOp, seqOp); ok {
		t.Fatal("positional server must fall back")
	}
	treeOp := []Op{TreeSet{Path: nil, Value: 1}}
	if _, ok := transformScalarFast(treeOp, scalarOp); ok {
		t.Fatal("tree client must fall back")
	}
	// Empty sides short-circuit successfully.
	if out, ok := transformScalarFast(nil, scalarOp); !ok || len(out) != 0 {
		t.Fatal("empty client should pass through")
	}
}

// TestScalarFastPathAbsorption pins each absorption rule explicitly.
func TestScalarFastPathAbsorption(t *testing.T) {
	cases := []struct {
		client, server Op
		survives       bool
	}{
		{MapSet{Key: "k", Value: 1}, MapSet{Key: "k", Value: 2}, false},
		{MapSet{Key: "k", Value: 1}, MapDelete{Key: "k"}, false},
		{MapSet{Key: "k", Value: 1}, MapSet{Key: "j", Value: 2}, true},
		{MapDelete{Key: "k"}, MapSet{Key: "k", Value: 2}, false},
		{MapDelete{Key: "k"}, MapDelete{Key: "k"}, true}, // idempotent keep
		{SetAdd{Elem: "x"}, SetRemove{Elem: "x"}, false},
		{SetAdd{Elem: "x"}, SetAdd{Elem: "x"}, true},
		{SetRemove{Elem: "x"}, SetAdd{Elem: "x"}, false},
		{SetRemove{Elem: "x"}, SetRemove{Elem: "x"}, true},
		{RegisterSet{Value: 1}, RegisterSet{Value: 2}, false},
		{CounterAdd{Delta: 1}, CounterAdd{Delta: 2}, true},
	}
	for _, c := range cases {
		out, ok := transformScalarFast([]Op{c.client}, []Op{c.server})
		if !ok {
			t.Fatalf("%v vs %v: fast path refused", c.client, c.server)
		}
		if got := len(out) == 1; got != c.survives {
			t.Errorf("%v vs %v: survives=%v, want %v", c.client, c.server, got, c.survives)
		}
		// And it must agree with the generic path (normalize nil/empty).
		slow, _ := TransformSeqs([]Op{c.client}, []Op{c.server})
		if !reflect.DeepEqual(append([]Op{}, out...), append([]Op{}, slow...)) {
			t.Errorf("%v vs %v: fast %v != slow %v", c.client, c.server, out, slow)
		}
	}
}

package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestScalarFastPathMatchesGeneric pins the keyed O(n+m) scalar transform
// against the general recursion: identical effects on identical states,
// for random single-family sequences (the runtime's shape).
func TestScalarFastPathMatchesGeneric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pick := r.Intn(4)
		gen := func(n int) []Op {
			var ops []Op
			for len(ops) < n {
				op := randomScalarOp(r)
				keep := false
				switch op.Kind() {
				case KindCounterAdd:
					keep = pick == 0
				case KindMapSet, KindMapDelete:
					keep = pick == 1
				case KindSetAdd, KindSetRemove:
					keep = pick == 2
				case KindRegisterSet:
					keep = pick == 3
				}
				if keep {
					ops = append(ops, op)
				}
			}
			return ops
		}
		client := gen(r.Intn(8))
		server := gen(r.Intn(8))

		fast, ok := transformScalarFast(client, server)
		if !ok {
			t.Logf("seed %d: fast path refused scalar input", seed)
			return false
		}
		slow, _ := TransformSeqs(client, server)

		base := newScalarModel()
		base.apply(MapSet{Key: "k1", Value: 0}, SetAdd{Elem: "k1"}, RegisterSet{Value: -1})
		base.apply(server...)
		a := base.clone()
		a.apply(fast...)
		b := base.clone()
		b.apply(slow...)
		if !a.equal(b) {
			t.Logf("seed %d: client=%v server=%v fast=%v slow=%v", seed, client, server, fast, slow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestShapeFastPathMatchesGeneric pins the iterative shape-based sequence
// transform against the generic interface-typed recursion: identical
// transformed sequences (both sides), for random valid concurrent histories
// of the list and text families — including the split (delete crossing
// insert) and absorb cases.
func TestShapeFastPathMatchesGeneric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		if r.Intn(2) == 0 {
			// List family.
			s := randomState(r)
			genSeq := func() []Op {
				cur := append([]any(nil), s...)
				k := r.Intn(6)
				ops := make([]Op, 0, k)
				for i := 0; i < k; i++ {
					op := randomSeqOp(r, len(cur))
					next, err := ApplySeq(cur, op)
					if err != nil {
						return ops
					}
					cur = next
					ops = append(ops, op)
				}
				return ops
			}
			a, b := genSeq(), genSeq()
			aS, bS, ok := toShapeOps(a, b)
			if !ok {
				t.Logf("seed %d: shape path refused list input", seed)
				return false
			}
			aR, bR := transformShapeSeqs(aS, bS)
			aFast, bFast := materializeShapes(aR), materializeShapes(bR)
			aSlow, bSlow := transformSeqsGeneric(a, b)
			if !reflect.DeepEqual(append([]Op{}, aFast...), append([]Op{}, aSlow...)) ||
				!reflect.DeepEqual(append([]Op{}, bFast...), append([]Op{}, bSlow...)) {
				t.Logf("seed %d: a=%v b=%v\nfast: aT=%v bT=%v\nslow: aT=%v bT=%v",
					seed, a, b, aFast, bFast, aSlow, bSlow)
				return false
			}
			return true
		}
		// Text family.
		s := "hello, world"
		genSeq := func() []Op {
			cur := s
			k := r.Intn(6)
			ops := make([]Op, 0, k)
			for i := 0; i < k; i++ {
				op := randomTextOp(r, len([]rune(cur)))
				next, err := applyTextAll(cur, []Op{op})
				if err != nil {
					return ops
				}
				cur = next
				ops = append(ops, op)
			}
			return ops
		}
		a, b := genSeq(), genSeq()
		aS, bS, ok := toShapeOps(a, b)
		if !ok {
			t.Logf("seed %d: shape path refused text input", seed)
			return false
		}
		aR, bR := transformShapeSeqs(aS, bS)
		aFast, bFast := materializeShapes(aR), materializeShapes(bR)
		aSlow, bSlow := transformSeqsGeneric(a, b)
		if !reflect.DeepEqual(append([]Op{}, aFast...), append([]Op{}, aSlow...)) ||
			!reflect.DeepEqual(append([]Op{}, bFast...), append([]Op{}, bSlow...)) {
			t.Logf("seed %d: a=%v b=%v\nfast: aT=%v bT=%v\nslow: aT=%v bT=%v",
				seed, a, b, aFast, bFast, aSlow, bSlow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6000}); err != nil {
		t.Fatal(err)
	}
}

// TestShapeFastPathReusesUnchangedOps confirms the materialization step
// returns the original interface values (no re-boxing) when a transform
// leaves shapes untouched — the allocation contract of the fast path.
func TestShapeFastPathReusesUnchangedOps(t *testing.T) {
	a := []Op{SeqSet{Pos: 0, Elem: "a"}, SeqInsert{Pos: 3, Elems: list(1, 2)}}
	b := []Op{SeqSet{Pos: 7, Elem: "b"}, SeqDelete{Pos: 6, N: 1}}
	aS, bS, ok := toShapeOps(a, b)
	if !ok {
		t.Fatal("shape path refused")
	}
	aR, _ := transformShapeSeqs(aS, bS)
	aT := materializeShapes(aR)
	if len(aT) != 2 {
		t.Fatalf("unexpected result %v", aT)
	}
	// The set at 0 is untouched by ops at 6/7 — must be the same value.
	if aT[0] != a[0] {
		t.Errorf("unchanged op was re-boxed: %v", aT[0])
	}
}

// TestSetFastPathMatchesGeneric pins the linear SeqSet-only transform
// against the generic recursion on both sides of the map/linear-scan size
// threshold.
func TestSetFastPathMatchesGeneric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(n int) []Op {
			ops := make([]Op, n)
			for i := range ops {
				ops[i] = SeqSet{Pos: r.Intn(6), Elem: r.Intn(100)}
			}
			return ops
		}
		// Sizes straddle linearMax so both the scan and map variants run.
		client := gen(r.Intn(14))
		server := gen(r.Intn(14))
		fast, ok := transformSetFast(client, server)
		if !ok {
			t.Logf("seed %d: fast path refused SeqSet input", seed)
			return false
		}
		slow, _ := transformSeqsGeneric(client, server)
		if !reflect.DeepEqual(append([]Op{}, fast...), append([]Op{}, slow...)) {
			t.Logf("seed %d: client=%v server=%v fast=%v slow=%v", seed, client, server, fast, slow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestSetFastPathFallsBack confirms mixed sequences refuse the SeqSet path.
func TestSetFastPathFallsBack(t *testing.T) {
	sets := []Op{SeqSet{Pos: 0, Elem: 1}}
	mixed := []Op{SeqSet{Pos: 0, Elem: 1}, SeqInsert{Pos: 0, Elems: list(2)}}
	if _, ok := transformSetFast(sets, mixed); ok {
		t.Fatal("mixed server must fall back")
	}
	if _, ok := transformSetFast(mixed, sets); ok {
		t.Fatal("mixed client must fall back")
	}
}

// TestScalarFastPathFallsBack confirms positional and mixed inputs refuse
// the fast path.
func TestScalarFastPathFallsBack(t *testing.T) {
	seqOp := []Op{SeqInsert{Pos: 0, Elems: list(1)}}
	scalarOp := []Op{CounterAdd{Delta: 1}}
	if _, ok := transformScalarFast(seqOp, scalarOp); ok {
		t.Fatal("positional client must fall back")
	}
	if _, ok := transformScalarFast(scalarOp, seqOp); ok {
		t.Fatal("positional server must fall back")
	}
	treeOp := []Op{TreeSet{Path: nil, Value: 1}}
	if _, ok := transformScalarFast(treeOp, scalarOp); ok {
		t.Fatal("tree client must fall back")
	}
	// Empty sides short-circuit successfully.
	if out, ok := transformScalarFast(nil, scalarOp); !ok || len(out) != 0 {
		t.Fatal("empty client should pass through")
	}
}

// TestScalarFastPathAbsorption pins each absorption rule explicitly.
func TestScalarFastPathAbsorption(t *testing.T) {
	cases := []struct {
		client, server Op
		survives       bool
	}{
		{MapSet{Key: "k", Value: 1}, MapSet{Key: "k", Value: 2}, false},
		{MapSet{Key: "k", Value: 1}, MapDelete{Key: "k"}, false},
		{MapSet{Key: "k", Value: 1}, MapSet{Key: "j", Value: 2}, true},
		{MapDelete{Key: "k"}, MapSet{Key: "k", Value: 2}, false},
		{MapDelete{Key: "k"}, MapDelete{Key: "k"}, true}, // idempotent keep
		{SetAdd{Elem: "x"}, SetRemove{Elem: "x"}, false},
		{SetAdd{Elem: "x"}, SetAdd{Elem: "x"}, true},
		{SetRemove{Elem: "x"}, SetAdd{Elem: "x"}, false},
		{SetRemove{Elem: "x"}, SetRemove{Elem: "x"}, true},
		{RegisterSet{Value: 1}, RegisterSet{Value: 2}, false},
		{CounterAdd{Delta: 1}, CounterAdd{Delta: 2}, true},
	}
	for _, c := range cases {
		out, ok := transformScalarFast([]Op{c.client}, []Op{c.server})
		if !ok {
			t.Fatalf("%v vs %v: fast path refused", c.client, c.server)
		}
		if got := len(out) == 1; got != c.survives {
			t.Errorf("%v vs %v: survives=%v, want %v", c.client, c.server, got, c.survives)
		}
		// And it must agree with the generic path (normalize nil/empty).
		slow, _ := TransformSeqs([]Op{c.client}, []Op{c.server})
		if !reflect.DeepEqual(append([]Op{}, out...), append([]Op{}, slow...)) {
			t.Errorf("%v vs %v: fast %v != slow %v", c.client, c.server, out, slow)
		}
	}
}

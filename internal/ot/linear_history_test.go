package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// These tests replicate the runtime's exact merge shape — several children
// transformed in order against a growing linear history — for every
// operation algebra beyond sequences (which control_test.go covers).
// The invariant under test: replaying the committed history from the base
// state must reproduce the state produced by incremental merging.

func TestLinearHistoryText(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []rune("abcdefgh")
		n := r.Intn(8)
		base := make([]rune, n)
		for i := range base {
			base[i] = alphabet[r.Intn(len(alphabet))]
		}

		children := make([][]Op, 3)
		for i := range children {
			cur := append([]rune(nil), base...)
			for j := 0; j < r.Intn(4); j++ {
				op := randomTextOp(r, len(cur))
				next, err := ApplyText(cur, op)
				if err != nil {
					break
				}
				cur = next
				children[i] = append(children[i], op)
			}
		}

		var history []Op
		state := append([]rune(nil), base...)
		for _, ops := range children {
			transformed := TransformAgainst(ops, history)
			for _, op := range transformed {
				next, err := ApplyText(state, op)
				if err != nil {
					t.Logf("seed %d: apply failed: %v", seed, err)
					return false
				}
				state = next
			}
			history = append(history, transformed...)
		}

		replay := append([]rune(nil), base...)
		for _, op := range history {
			next, err := ApplyText(replay, op)
			if err != nil {
				t.Logf("seed %d: replay failed: %v", seed, err)
				return false
			}
			replay = next
		}
		if string(replay) != string(state) {
			t.Logf("seed %d: replay %q != state %q", seed, string(replay), string(state))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearHistoryScalars(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := newScalarModel()
		base.apply(MapSet{Key: "k1", Value: 1}, SetAdd{Elem: "k2"}, RegisterSet{Value: 0}, CounterAdd{Delta: 5})

		// Children produce ops of one family each so transforms are legal;
		// the runtime guarantees this (one log per structure).
		families := [][]func() Op{
			{func() Op { return CounterAdd{Delta: int64(r.Intn(9) - 4)} }},
			{func() Op { return MapSet{Key: "k1", Value: r.Intn(50)} },
				func() Op { return MapDelete{Key: "k1"} },
				func() Op { return MapSet{Key: "k2", Value: r.Intn(50)} }},
			{func() Op { return SetAdd{Elem: "k1"} },
				func() Op { return SetRemove{Elem: "k2"} }},
			{func() Op { return RegisterSet{Value: r.Intn(50)} }},
		}
		family := families[r.Intn(len(families))]

		children := make([][]Op, 3)
		for i := range children {
			for j := 0; j < r.Intn(4); j++ {
				children[i] = append(children[i], family[r.Intn(len(family))]())
			}
		}

		var history []Op
		state := base.clone()
		for _, ops := range children {
			transformed := TransformAgainst(ops, history)
			state.apply(transformed...)
			history = append(history, transformed...)
		}
		replay := base.clone()
		replay.apply(history...)
		if !replay.equal(state) {
			t.Logf("seed %d: replay %+v != state %+v (history %v)", seed, replay, state, history)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearHistoryTree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomTree(r, 2)

		children := make([][]Op, 3)
		for i := range children {
			cur := CloneTree(base)
			for j := 0; j < r.Intn(3); j++ {
				op := randomTreeOp(r, cur)
				next, err := ApplyTree(cur, op)
				if err != nil {
					break
				}
				cur = next
				children[i] = append(children[i], op)
			}
		}

		var history []Op
		state := CloneTree(base)
		for _, ops := range children {
			transformed := TransformAgainst(ops, history)
			for _, op := range transformed {
				next, err := ApplyTree(state, op)
				if err != nil {
					t.Logf("seed %d: apply %v failed: %v", seed, op, err)
					return false
				}
				state = next
			}
			history = append(history, transformed...)
		}
		replay := CloneTree(base)
		for _, op := range history {
			next, err := ApplyTree(replay, op)
			if err != nil {
				t.Logf("seed %d: replay %v failed: %v", seed, op, err)
				return false
			}
			replay = next
		}
		if !reflect.DeepEqual(renderForTest(replay), renderForTest(state)) {
			t.Logf("seed %d: replay %s != state %s", seed, renderForTest(replay), renderForTest(state))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1200}); err != nil {
		t.Fatal(err)
	}
}

func renderForTest(n *TreeNode) string {
	if n == nil {
		return "·"
	}
	s := ""
	var walk func(*TreeNode)
	walk = func(x *TreeNode) {
		s += "("
		s += stringify(x.Value)
		for _, c := range x.Children {
			walk(c)
		}
		s += ")"
	}
	walk(n)
	return s
}

func stringify(v any) string {
	switch x := v.(type) {
	case int:
		return string(rune('0' + x%10))
	default:
		return "?"
	}
}

// Package ot implements the operational transformation (OT) engine that
// powers deterministic merging in the Spawn & Merge framework.
//
// The package follows the two-layer decomposition of Ellis & Gibbs (1989)
// that the paper adopts in Section II.B:
//
//   - Transformation functions: every operation knows how to rewrite itself
//     so that it applies *after* a concurrent operation has already been
//     applied (Op.Transform).
//   - Transformation control algorithm: TransformSeqs composes pairwise
//     transforms into sequence-against-sequence transformation using the
//     standard GOT identities (see control.go).
//
// Operations are immutable values. Transform never mutates its receiver or
// argument; it returns fresh operations. A transform may absorb an operation
// entirely (empty result) or split it into several operations (for example a
// deletion split in two by a concurrent insertion in its middle).
//
// Ties between concurrent operations (two insertions at the same index, two
// writes of the same key, ...) are broken by a priority flag. The Spawn &
// Merge runtime always gives priority to the side that merged earlier (the
// parent's already-committed history), which is what makes
// merge(x, y) != merge(y, x) deterministic rather than racy.
package ot

import "fmt"

// Kind identifies the family and role of an operation. Operations from
// different families never meet in one transformation because every
// mergeable structure keeps its own operation log.
type Kind uint8

// Operation kinds, grouped by the data-structure family they belong to.
const (
	KindInvalid Kind = iota

	// Sequence family (lists, queues and — with a string payload — text).
	KindSeqInsert
	KindSeqDelete
	KindSeqSet
	KindTextInsert
	KindTextDelete

	// Counter family.
	KindCounterAdd

	// Map family.
	KindMapSet
	KindMapDelete

	// Mathematical-set family.
	KindSetAdd
	KindSetRemove

	// Register family.
	KindRegisterSet

	// Tree family.
	KindTreeInsert
	KindTreeDelete
	KindTreeSet
)

var kindNames = map[Kind]string{
	KindInvalid:     "invalid",
	KindSeqInsert:   "seq.ins",
	KindSeqDelete:   "seq.del",
	KindSeqSet:      "seq.set",
	KindTextInsert:  "text.ins",
	KindTextDelete:  "text.del",
	KindCounterAdd:  "counter.add",
	KindMapSet:      "map.set",
	KindMapDelete:   "map.del",
	KindSetAdd:      "set.add",
	KindSetRemove:   "set.rem",
	KindRegisterSet: "reg.set",
	KindTreeInsert:  "tree.ins",
	KindTreeDelete:  "tree.del",
	KindTreeSet:     "tree.set",
}

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is a single operation recorded against a mergeable data structure.
//
// Implementations must be immutable: Transform returns rewritten copies and
// never modifies the receiver or its argument.
type Op interface {
	// Kind reports the operation's family and role.
	Kind() Kind

	// Transform rewrites the operation so that it preserves its intention
	// when applied after other (a concurrent operation on the same
	// structure) has already been applied. otherPriority reports whether
	// other wins ties; the runtime passes true when other belongs to the
	// already-merged history.
	//
	// The result may be empty (the operation was absorbed, e.g. a deletion
	// of an element the other side already deleted) or contain several
	// operations (the operation was split).
	Transform(other Op, otherPriority bool) []Op

	// String renders the operation in the del(2)/ins(0,d) notation the
	// paper uses in Figures 1 and 2.
	String() string
}

// mismatch reports an attempt to transform operations from different
// data-structure families. That can only happen through a bug in the caller
// (each structure has its own log), so it panics.
func mismatch(a, b Op) {
	panic(fmt.Sprintf("ot: cannot transform %s against %s: operations belong to different families", a.Kind(), b.Kind()))
}

package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// scalarModel is a tiny interpreter for counter/map/set/register ops used
// to check TP1 without involving the mergeable package.
type scalarModel struct {
	counter int64
	m       map[any]any
	set     map[any]bool
	reg     any
}

func newScalarModel() *scalarModel {
	return &scalarModel{m: map[any]any{}, set: map[any]bool{}}
}

func (s *scalarModel) clone() *scalarModel {
	c := newScalarModel()
	c.counter = s.counter
	c.reg = s.reg
	for k, v := range s.m {
		c.m[k] = v
	}
	for k, v := range s.set {
		c.set[k] = v
	}
	return c
}

func (s *scalarModel) apply(ops ...Op) {
	for _, op := range ops {
		switch v := op.(type) {
		case CounterAdd:
			s.counter += v.Delta
		case MapSet:
			s.m[v.Key] = v.Value
		case MapDelete:
			delete(s.m, v.Key)
		case SetAdd:
			s.set[v.Elem] = true
		case SetRemove:
			delete(s.set, v.Elem)
		case RegisterSet:
			s.reg = v.Value
		}
	}
}

func (s *scalarModel) equal(o *scalarModel) bool {
	return s.counter == o.counter && s.reg == o.reg &&
		reflect.DeepEqual(s.m, o.m) && reflect.DeepEqual(s.set, o.set)
}

func randomScalarOp(r *rand.Rand) Op {
	keys := []any{"k1", "k2", "k3"}
	switch r.Intn(6) {
	case 0:
		return CounterAdd{Delta: int64(r.Intn(10) - 5)}
	case 1:
		return MapSet{Key: keys[r.Intn(len(keys))], Value: r.Intn(100)}
	case 2:
		return MapDelete{Key: keys[r.Intn(len(keys))]}
	case 3:
		return SetAdd{Elem: keys[r.Intn(len(keys))]}
	case 4:
		return SetRemove{Elem: keys[r.Intn(len(keys))]}
	default:
		return RegisterSet{Value: r.Intn(100)}
	}
}

// sameFamily reports whether two ops may legally be transformed against
// each other (they belong to the same structure family).
func sameFamily(a, b Op) bool {
	family := func(o Op) int {
		switch o.Kind() {
		case KindCounterAdd:
			return 1
		case KindMapSet, KindMapDelete:
			return 2
		case KindSetAdd, KindSetRemove:
			return 3
		case KindRegisterSet:
			return 4
		}
		return 0
	}
	return family(a) == family(b)
}

func TestTP1Scalars(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomScalarOp(r)
		b := randomScalarOp(r)
		if !sameFamily(a, b) {
			return true
		}
		base := newScalarModel()
		base.apply(MapSet{Key: "k1", Value: 0}, SetAdd{Elem: "k1"}, RegisterSet{Value: -1})

		aT, bT := TransformPair(a, b)
		left := base.clone()
		left.apply(a)
		left.apply(bT...)
		right := base.clone()
		right.apply(b)
		right.apply(aT...)
		if !left.equal(right) {
			t.Logf("seed %d: a=%v b=%v left=%+v right=%+v", seed, a, b, left, right)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterCommutes(t *testing.T) {
	a := CounterAdd{Delta: 2}
	b := CounterAdd{Delta: -7}
	aT, bT := TransformPair(Op(a), Op(b))
	if len(aT) != 1 || len(bT) != 1 {
		t.Fatalf("counter transforms should be identity, got %v / %v", aT, bT)
	}
	if aT[0].(CounterAdd).Delta != 2 || bT[0].(CounterAdd).Delta != -7 {
		t.Fatalf("counter deltas changed: %v / %v", aT, bT)
	}
}

func TestMapSetConflictPriorityWins(t *testing.T) {
	child := MapSet{Key: "k", Value: "child"}
	parent := MapSet{Key: "k", Value: "parent"}
	childT := child.Transform(parent, true)
	if len(childT) != 0 {
		t.Fatalf("child write should be absorbed by priority write, got %v", childT)
	}
	// Different keys commute.
	other := MapSet{Key: "other", Value: 1}
	if got := child.Transform(other, true); len(got) != 1 {
		t.Fatalf("independent keys should commute, got %v", got)
	}
}

func TestMapDeleteVsSet(t *testing.T) {
	del := MapDelete{Key: "k"}
	set := MapSet{Key: "k", Value: 1}
	if got := del.Transform(set, true); len(got) != 0 {
		t.Fatalf("delete should yield to priority set, got %v", got)
	}
	if got := del.Transform(set, false); len(got) != 1 {
		t.Fatalf("delete should survive a non-priority set, got %v", got)
	}
}

func TestRegisterConflict(t *testing.T) {
	a := RegisterSet{Value: 1}
	b := RegisterSet{Value: 2}
	if got := a.Transform(b, true); len(got) != 0 {
		t.Fatalf("non-priority register write should be absorbed, got %v", got)
	}
	if got := a.Transform(b, false); len(got) != 1 {
		t.Fatalf("priority register write should survive, got %v", got)
	}
}

func TestSetAddIdempotent(t *testing.T) {
	a := SetAdd{Elem: "x"}
	b := SetAdd{Elem: "x"}
	if got := a.Transform(b, true); len(got) != 1 {
		t.Fatalf("concurrent identical adds converge by idempotence, got %v", got)
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("transforming across families should panic")
		}
	}()
	CounterAdd{Delta: 1}.Transform(MapSet{Key: "k", Value: 1}, true)
}

func TestScalarStrings(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{CounterAdd{Delta: 3}, "add(3)"},
		{MapSet{Key: "k", Value: 1}, "put(k,1)"},
		{MapDelete{Key: "k"}, "remove(k)"},
		{SetAdd{Elem: "x"}, "add(x)"},
		{SetRemove{Elem: "x"}, "remove(x)"},
		{RegisterSet{Value: 9}, "set(9)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.op, got, c.want)
		}
	}
}

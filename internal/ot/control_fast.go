package ot

// This file is the allocation-disciplined fast path of the transformation
// control algorithm for the sequence families (list/queue and text). The
// generic recursion in control.go transforms through the Op interface: every
// pairwise transform boxes its results into fresh []Op slices, which makes a
// quadratic n×m transform allocate O(n·m) interface slices. Structure logs
// are homogeneous, so almost every real transform lands here instead: the
// operations are unwrapped once into payload-free shapes (shapeOp), the
// whole recursion runs on inline-array pairwise results, and operations are
// boxed back only at the end — reusing the original interface value whenever
// a shape comes out of the transformation unchanged.
//
// TestShapeFastPathMatchesGeneric pins the equivalence against the generic
// recursion under random concurrent histories.

// shapeOp is one sequence operation unwrapped for transformation: the
// position/length skeleton plus the original operation, which carries the
// payload (insert elements, set value, text) and is reused verbatim when
// the shape survives unchanged.
type shapeOp struct {
	shape seqShape
	src   Op
}

// shapeOpOf unwraps a sequence- or text-family operation. ok is false for
// any other family (trees, scalars, user-defined operations), which sends
// the caller to the generic recursion.
func shapeOpOf(op Op) (shapeOp, bool) {
	switch v := op.(type) {
	case SeqInsert:
		return shapeOp{shape: ins(v.Pos, len(v.Elems)), src: op}, true
	case SeqDelete:
		return shapeOp{shape: del(v.Pos, v.N), src: op}, true
	case SeqSet:
		return shapeOp{shape: set(v.Pos), src: op}, true
	case TextInsert:
		return shapeOp{shape: ins(v.Pos, len([]rune(v.Text))), src: op}, true
	case TextDelete:
		return shapeOp{shape: del(v.Pos, v.N), src: op}, true
	}
	return shapeOp{}, false
}

// materialize boxes a transformed shape back into a concrete operation. The
// original interface value is returned untouched when the shape is
// unchanged — the common case (most operations pass each other without
// conflict), and the reason the fast path allocates almost nothing.
func (s shapeOp) materialize() Op {
	switch v := s.src.(type) {
	case SeqInsert:
		if s.shape.pos == v.Pos {
			return s.src
		}
		return SeqInsert{Pos: s.shape.pos, Elems: v.Elems}
	case SeqDelete:
		if s.shape.pos == v.Pos && s.shape.n == v.N {
			return s.src
		}
		return SeqDelete{Pos: s.shape.pos, N: s.shape.n}
	case SeqSet:
		if s.shape.pos == v.Pos {
			return s.src
		}
		return SeqSet{Pos: s.shape.pos, Elem: v.Elem}
	case TextInsert:
		if s.shape.pos == v.Pos {
			return s.src
		}
		return TextInsert{Pos: s.shape.pos, Text: v.Text}
	case TextDelete:
		if s.shape.pos == v.Pos && s.shape.n == v.N {
			return s.src
		}
		return TextDelete{Pos: s.shape.pos, N: s.shape.n}
	}
	return s.src
}

// toShapeOps unwraps both sequences. ok is false when any operation is not
// shape-representable; mixing the list and text families inside one
// transform is a caller bug and is also rejected here (it would panic in
// the generic path).
func toShapeOps(a, b []Op) (aS, bS []shapeOp, ok bool) {
	aS = make([]shapeOp, len(a))
	for i, op := range a {
		s, sOK := shapeOpOf(op)
		if !sOK {
			return nil, nil, false
		}
		aS[i] = s
	}
	bS = make([]shapeOp, len(b))
	for i, op := range b {
		s, sOK := shapeOpOf(op)
		if !sOK {
			return nil, nil, false
		}
		bS[i] = s
	}
	return aS, bS, true
}

func materializeShapes(s []shapeOp) []Op {
	if len(s) == 0 {
		return nil
	}
	out := make([]Op, len(s))
	for i, x := range s {
		out[i] = x.materialize()
	}
	return out
}

// appendShapeResult expands one pairwise result into dst, dropping absorbed
// operations and carrying src through splits.
func appendShapeResult(dst []shapeOp, src Op, r seqResult) []shapeOp {
	for _, sh := range r.shapes[:r.n] {
		dst = append(dst, shapeOp{shape: sh, src: src})
	}
	return dst
}

// transformShapeSeqs is TransformSeqs on unwrapped shapes: same GOT
// identities, same priority convention (b wins ties), but iterative instead
// of recursive, so the O(n·m) grid walk reuses four ping-pong buffers
// instead of concatenating fresh slices at every recursion level. The only
// allocations on the common path are the two result slices and the scratch
// buffers themselves.
//
// The walk consumes a left to right. xCur holds the current a-op's
// transformed forms (usually one, more after splits); bCur holds b as
// rewritten by the a-prefix consumed so far. One cell of the grid — x's
// forms against a single b-op — is delegated to mutualOneVsSeq per form.
func transformShapeSeqs(a, b []shapeOp) (aT, bT []shapeOp) {
	if len(a) == 0 || len(b) == 0 {
		return a, b
	}
	aOut := make([]shapeOp, 0, len(a)+2)
	bCur := append(make([]shapeOp, 0, len(b)+2), b...)
	bNext := make([]shapeOp, 0, len(b)+2)
	xCur := make([]shapeOp, 0, 8)
	xAlt := make([]shapeOp, 0, 8)
	yCur := make([]shapeOp, 0, 8)
	yAlt := make([]shapeOp, 0, 8)
	for _, x := range a {
		xCur = append(xCur[:0], x)
		bNext = bNext[:0]
		for _, y := range bCur {
			// Mutually transform the sequence xCur against the single op y:
			// each form xi sees y as rewritten by the forms before it
			// (T(B, A1·A2) identity), and y's forms accumulate the rewrites
			// (T(A1·A2, B) identity).
			yCur = append(yCur[:0], y)
			xAlt = xAlt[:0]
			for _, xi := range xCur {
				yAlt = yAlt[:0]
				xAlt, yAlt = mutualOneVsSeq(xi, yCur, xAlt, yAlt)
				yCur, yAlt = yAlt, yCur
			}
			xCur, xAlt = xAlt, xCur
			bNext = append(bNext, yCur...)
		}
		aOut = append(aOut, xCur...)
		bCur, bNext = bNext, bCur
	}
	return aOut, bCur
}

// mutualOneVsSeq transforms the single operation x against the sequence ys
// and vice versa, appending x's resulting forms to xDst and ys's to ysDst.
// Splits make either side a sequence mid-flight; the recursion bottoms out
// at the allocation-free single-single pairwise transform, so the nested
// buffers (only needed on the rare multi-y path) stay on the stack in
// practice.
func mutualOneVsSeq(x shapeOp, ys []shapeOp, xDst, ysDst []shapeOp) ([]shapeOp, []shapeOp) {
	switch len(ys) {
	case 0:
		return append(xDst, x), ysDst
	case 1:
		ra := transformSeqShape(x.shape, ys[0].shape, true)
		rb := transformSeqShape(ys[0].shape, x.shape, false)
		return appendShapeResult(xDst, x.src, ra), appendShapeResult(ysDst, ys[0].src, rb)
	}
	// Multi-op ys (an earlier split): x passes over ys left to right; each
	// yk is rewritten against x's forms as they stand at its turn.
	var xb, xb2 [4]shapeOp
	xList := append(xb[:0], x)
	xAlt := xb2[:0]
	for _, yk := range ys {
		var yb, yb2 [4]shapeOp
		ykList := append(yb[:0], yk)
		ykAlt := yb2[:0]
		xAlt = xAlt[:0]
		for _, xi := range xList {
			ykAlt = ykAlt[:0]
			xAlt, ykAlt = mutualOneVsSeq(xi, ykList, xAlt, ykAlt)
			ykList, ykAlt = ykAlt, ykList
		}
		xList, xAlt = xAlt, xList
		ysDst = append(ysDst, ykList...)
	}
	return append(xDst, xList...), ysDst
}

// allSeqSets reports whether every operation is a SeqSet.
func allSeqSets(ops []Op) bool {
	for _, op := range ops {
		if _, ok := op.(SeqSet); !ok {
			return false
		}
	}
	return true
}

// transformSetFast handles client/server sequences consisting solely of
// SeqSet operations in O(|client|+|server|): overwrites never reposition
// anything, so a client set either survives verbatim or is absorbed by a
// server set of the same slot (the server has priority), and the server
// sequence is never modified. Mirrors transformAgainstSet with
// bPriority=true, pinned by TestSetFastPathMatchesGeneric.
func transformSetFast(client, server []Op) ([]Op, bool) {
	return transformSetFastInto(client, server, nil)
}

// transformSetFastInto is transformSetFast appending surviving operations
// onto dst (which may be an arena; it is guaranteed untouched when ok is
// false). A nil dst allocates lazily.
func transformSetFastInto(client, server, dst []Op) ([]Op, bool) {
	if len(client) == 0 || len(server) == 0 {
		return client, true
	}
	if !allSeqSets(client) || !allSeqSets(server) {
		return dst, false
	}
	// Index the server's written slots; linear scan for tiny histories to
	// skip the map allocation.
	const linearMax = 8
	var written map[int]struct{}
	if len(server) > linearMax {
		written = make(map[int]struct{}, len(server))
		for _, op := range server {
			written[op.(SeqSet).Pos] = struct{}{}
		}
	}
	absorbed := func(pos int) bool {
		if written != nil {
			_, hit := written[pos]
			return hit
		}
		for _, op := range server {
			if op.(SeqSet).Pos == pos {
				return true
			}
		}
		return false
	}
	out := dst
	for _, op := range client {
		if !absorbed(op.(SeqSet).Pos) {
			out = append(out, op)
		}
	}
	return out, true
}

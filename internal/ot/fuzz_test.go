package ot

import (
	"reflect"
	"testing"
)

// decodeFuzzOps turns raw fuzz bytes into a base state and two concurrent
// sequence-operation lists, each sequentially valid against the base. The
// first byte picks the base length; every following 3-byte chunk is one
// operation (side, role, position, span), with positions and spans reduced
// modulo the current state length so any input decodes to a valid program.
func decodeFuzzOps(data []byte) (base []any, a, b []Op) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	n := int(data[0] % 8)
	base = make([]any, n)
	for i := range base {
		base[i] = i
	}
	lens := [2]int{n, n}
	next := 0
	for i := 1; i+2 < len(data); i += 3 {
		side := int(data[i] >> 7)
		role := data[i] & 3
		l := lens[side]
		var op Op
		switch {
		case role == 0 || l == 0:
			k := 1 + int(data[i+2]%3)
			elems := make([]any, k)
			for j := range elems {
				next++
				elems[j] = 100 + next
			}
			op = SeqInsert{Pos: int(data[i+1]) % (l + 1), Elems: elems}
			lens[side] = l + k
		case role == 1:
			pos := int(data[i+1]) % l
			k := 1 + int(data[i+2])%(l-pos)
			op = SeqDelete{Pos: pos, N: k}
			lens[side] = l - k
		default:
			op = SeqSet{Pos: int(data[i+1]) % l, Elem: 200 + int(data[i+2])}
		}
		if side == 0 {
			a = append(a, op)
		} else {
			b = append(b, op)
		}
	}
	return base, a, b
}

// FuzzListTransform fuzzes the sequence-family control algorithm with
// machine-generated concurrent histories and asserts, for every decoded
// input, the properties the merge step depends on: both transform
// directions apply cleanly, TP1 convergence holds, compaction before
// transformation preserves the merged state, and TransformAgainst agrees
// with the full TransformSeqs.
func FuzzListTransform(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0x00, 1, 1, 0x80, 1, 1})                         // insert vs insert at same pos
	f.Add([]byte{5, 0x01, 0, 4, 0x81, 1, 2})                         // overlapping deletes
	f.Add([]byte{4, 0x01, 1, 3, 0x80, 2, 1})                         // delete split by insert
	f.Add([]byte{2, 0x02, 1, 9, 0x82, 1, 7})                         // set/set conflict
	f.Add([]byte{6, 0x01, 0, 1, 0x01, 0, 1, 0x81, 2, 1, 0x82, 0, 5}) // pop run vs mixed
	f.Fuzz(func(t *testing.T, data []byte) {
		base, a, b := decodeFuzzOps(data)
		apply := func(s []any, ops []Op) []any {
			var err error
			for _, op := range ops {
				s, err = ApplySeq(s, op)
				if err != nil {
					t.Fatalf("apply %v to len-%d state: %v", op, len(s), err)
				}
			}
			return s
		}
		aT, bT := TransformSeqs(a, b)
		left := apply(apply(base, a), bT)
		right := apply(apply(base, b), aT)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("TP1 violated: a=%v b=%v\n  a·b' = %v\n  b·a' = %v", a, b, left, right)
		}
		// TransformAgainst(a, b) is the client-side half of TransformSeqs.
		if against := TransformAgainst(a, b); !reflect.DeepEqual(apply(apply(base, b), against), right) {
			t.Fatalf("TransformAgainst disagrees with TransformSeqs: a=%v b=%v", a, b)
		}
		// Compacting the client side must not change the merged state.
		compacted := apply(apply(base, b), TransformAgainst(CompactSeq(a), b))
		if !reflect.DeepEqual(compacted, right) {
			t.Fatalf("compact+transform diverged: a=%v compact=%v b=%v\n  raw  %v\n  fast %v",
				a, CompactSeq(a), b, right, compacted)
		}
	})
}

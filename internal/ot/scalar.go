package ot

import "fmt"

// This file holds the operation algebras whose transforms involve no index
// arithmetic: counters, maps, mathematical sets and registers. Their
// transformation functions are mostly the identity; the interesting cases
// are write-write conflicts, where exactly one side must win so both merge
// orders converge (TP1).

// CounterAdd adds Delta to a mergeable counter. Addition commutes, so the
// transform is always the identity: concurrent increments simply accumulate.
type CounterAdd struct {
	Delta int64
}

// Kind implements Op.
func (o CounterAdd) Kind() Kind { return KindCounterAdd }

func (o CounterAdd) String() string { return fmt.Sprintf("add(%d)", o.Delta) }

// Transform implements Op.
func (o CounterAdd) Transform(other Op, otherPriority bool) []Op {
	if _, ok := other.(CounterAdd); !ok {
		mismatch(o, other)
	}
	return []Op{o}
}

// MapSet stores Value under Key in a mergeable map.
type MapSet struct {
	Key   any
	Value any
}

// MapDelete removes Key from a mergeable map. Deleting an absent key is a
// no-op at application time.
type MapDelete struct {
	Key any
}

// Kind implements Op.
func (o MapSet) Kind() Kind { return KindMapSet }

// Kind implements Op.
func (o MapDelete) Kind() Kind { return KindMapDelete }

func (o MapSet) String() string    { return fmt.Sprintf("put(%v,%v)", o.Key, o.Value) }
func (o MapDelete) String() string { return fmt.Sprintf("remove(%v)", o.Key) }

// Transform implements Op. Concurrent writes (set/set, set/delete,
// delete/delete) to the same key are resolved in favor of the priority
// side; everything else commutes.
func (o MapSet) Transform(other Op, otherPriority bool) []Op {
	switch v := other.(type) {
	case MapSet:
		if v.Key == o.Key && otherPriority {
			return nil
		}
	case MapDelete:
		if v.Key == o.Key && otherPriority {
			return nil
		}
	default:
		mismatch(o, other)
	}
	return []Op{o}
}

// Transform implements Op. Identical concurrent deletes are kept, not
// annihilated: deletion is idempotent at application time, and pairwise
// annihilation would make sequence transformation sensitive to duplicate
// counts (each client delete would "consume" one server delete), which
// breaks under operation-log compaction.
func (o MapDelete) Transform(other Op, otherPriority bool) []Op {
	switch v := other.(type) {
	case MapSet:
		if v.Key == o.Key && otherPriority {
			return nil
		}
	case MapDelete:
		// Keep: deleting an absent key is a no-op.
	default:
		mismatch(o, other)
	}
	return []Op{o}
}

// SetAdd inserts Elem into a mergeable mathematical set.
type SetAdd struct {
	Elem any
}

// SetRemove removes Elem from a mergeable mathematical set.
type SetRemove struct {
	Elem any
}

// Kind implements Op.
func (o SetAdd) Kind() Kind { return KindSetAdd }

// Kind implements Op.
func (o SetRemove) Kind() Kind { return KindSetRemove }

func (o SetAdd) String() string    { return fmt.Sprintf("add(%v)", o.Elem) }
func (o SetRemove) String() string { return fmt.Sprintf("remove(%v)", o.Elem) }

// Transform implements Op. Concurrent adds of the same element are
// idempotent; an add racing a remove of the same element is resolved by
// priority.
func (o SetAdd) Transform(other Op, otherPriority bool) []Op {
	switch v := other.(type) {
	case SetAdd:
		// Adding twice converges on its own.
	case SetRemove:
		if v.Elem == o.Elem && otherPriority {
			return nil
		}
	default:
		mismatch(o, other)
	}
	return []Op{o}
}

// Transform implements Op. Identical concurrent removes are kept (see
// MapDelete.Transform for why annihilation would be wrong).
func (o SetRemove) Transform(other Op, otherPriority bool) []Op {
	switch v := other.(type) {
	case SetAdd:
		if v.Elem == o.Elem && otherPriority {
			return nil
		}
	case SetRemove:
		// Keep: removing an absent element is a no-op.
	default:
		mismatch(o, other)
	}
	return []Op{o}
}

// RegisterSet overwrites the value of a mergeable single-value register.
type RegisterSet struct {
	Value any
}

// Kind implements Op.
func (o RegisterSet) Kind() Kind { return KindRegisterSet }

func (o RegisterSet) String() string { return fmt.Sprintf("set(%v)", o.Value) }

// Transform implements Op. Two concurrent assignments conflict; the
// priority side wins.
func (o RegisterSet) Transform(other Op, otherPriority bool) []Op {
	if _, ok := other.(RegisterSet); !ok {
		mismatch(o, other)
	}
	if otherPriority {
		return nil
	}
	return []Op{o}
}

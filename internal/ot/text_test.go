package ot

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func applyTextAll(s string, ops []Op) (string, error) {
	cur := []rune(s)
	var err error
	for _, op := range ops {
		cur, err = ApplyText(cur, op)
		if err != nil {
			return "", err
		}
	}
	return string(cur), nil
}

func TestApplyText(t *testing.T) {
	got, err := applyTextAll("hello", []Op{
		TextInsert{Pos: 5, Text: " world"},
		TextDelete{Pos: 0, N: 1},
		TextInsert{Pos: 0, Text: "H"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "Hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestApplyTextRunes(t *testing.T) {
	// Positions address runes, not bytes.
	got, err := applyTextAll("héllo", []Op{TextDelete{Pos: 1, N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hllo" {
		t.Fatalf("got %q", got)
	}
	got, err = applyTextAll("日本語", []Op{TextInsert{Pos: 2, Text: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if got != "日本x語" {
		t.Fatalf("got %q", got)
	}
}

func TestApplyTextBounds(t *testing.T) {
	for _, op := range []Op{
		TextInsert{Pos: 6, Text: "x"},
		TextInsert{Pos: -1, Text: "x"},
		TextDelete{Pos: 3, N: 3},
		TextDelete{Pos: 0, N: -1},
	} {
		if _, err := applyTextAll("hello", []Op{op}); err == nil {
			t.Errorf("apply %v: want error", op)
		}
	}
	if _, err := applyTextAll("hello", []Op{CounterAdd{Delta: 1}}); err == nil {
		t.Errorf("applying a counter op to text should fail")
	}
}

func TestTextConvergenceExample(t *testing.T) {
	// The canonical collaborative-editing example: two users edit "Hello".
	base := "Hello"
	a := []Op{TextInsert{Pos: 5, Text: "!"}}                           // child appends "!"
	b := []Op{TextDelete{Pos: 0, N: 1}, TextInsert{Pos: 0, Text: "J"}} // parent J-ifies

	aT, bT := TransformSeqs(a, b)
	left, err := applyTextAll(base, append(append([]Op{}, a...), bT...))
	if err != nil {
		t.Fatal(err)
	}
	right, err := applyTextAll(base, append(append([]Op{}, b...), aT...))
	if err != nil {
		t.Fatal(err)
	}
	if left != right || left != "Jello!" {
		t.Fatalf("left=%q right=%q, want %q", left, right, "Jello!")
	}
}

func randomTextOp(r *rand.Rand, n int) Op {
	if n == 0 || r.Intn(2) == 0 {
		texts := []string{"a", "bc", "déf", "語"}
		return TextInsert{Pos: r.Intn(n + 1), Text: texts[r.Intn(len(texts))]}
	}
	pos := r.Intn(n)
	return TextDelete{Pos: pos, N: 1 + r.Intn(n-pos)}
}

func TestTP1Text(t *testing.T) {
	alphabet := []rune("abcdefgh日本語")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(10)
		runes := make([]rune, n)
		for i := range runes {
			runes[i] = alphabet[r.Intn(len(alphabet))]
		}
		s := string(runes)
		a := randomTextOp(r, n)
		b := randomTextOp(r, n)
		aT, bT := TransformPair(a, b)
		left, err := applyTextAll(s, append([]Op{a}, bT...))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		right, err := applyTextAll(s, append([]Op{b}, aT...))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if left != right {
			t.Logf("seed %d: s=%q a=%v b=%v left=%q right=%q", seed, s, a, b, left, right)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTextOpStrings(t *testing.T) {
	if got := (TextInsert{Pos: 3, Text: "hi"}).String(); got != `ins(3,"hi")` {
		t.Errorf("got %q", got)
	}
	if got := (TextDelete{Pos: 3, N: 1}).String(); got != "del(3)" {
		t.Errorf("got %q", got)
	}
}

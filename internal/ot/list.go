package ot

import (
	"fmt"
	"strings"
)

// SeqInsert inserts Elems before position Pos of a sequence (list or queue).
// Inserting at Pos == len appends.
type SeqInsert struct {
	Pos   int
	Elems []any
}

// SeqDelete removes N consecutive elements starting at position Pos.
type SeqDelete struct {
	Pos int
	N   int
}

// SeqSet overwrites the element at position Pos with Elem.
type SeqSet struct {
	Pos  int
	Elem any
}

// Kind implements Op.
func (o SeqInsert) Kind() Kind { return KindSeqInsert }

// Kind implements Op.
func (o SeqDelete) Kind() Kind { return KindSeqDelete }

// Kind implements Op.
func (o SeqSet) Kind() Kind { return KindSeqSet }

func (o SeqInsert) String() string {
	parts := make([]string, len(o.Elems))
	for i, e := range o.Elems {
		parts[i] = fmt.Sprintf("%v", e)
	}
	return fmt.Sprintf("ins(%d,%s)", o.Pos, strings.Join(parts, ","))
}

func (o SeqDelete) String() string {
	if o.N == 1 {
		return fmt.Sprintf("del(%d)", o.Pos)
	}
	return fmt.Sprintf("del(%d,n=%d)", o.Pos, o.N)
}

func (o SeqSet) String() string { return fmt.Sprintf("set(%d,%v)", o.Pos, o.Elem) }

// shape reduces a sequence op to its skeleton for the shared transform.
func seqShapeOf(o Op) (seqShape, bool) {
	switch v := o.(type) {
	case SeqInsert:
		return ins(v.Pos, len(v.Elems)), true
	case SeqDelete:
		return del(v.Pos, v.N), true
	case SeqSet:
		return set(v.Pos), true
	}
	return seqShape{}, false
}

// rebuild materializes transformed shapes back into concrete list ops,
// carrying the original payload where one exists. Only deletions ever split,
// so inserts and sets map onto at most one shape.
func (o SeqInsert) rebuild(r seqResult) []Op {
	ops := make([]Op, 0, r.n)
	for _, s := range r.shapes[:r.n] {
		ops = append(ops, SeqInsert{Pos: s.pos, Elems: o.Elems})
	}
	return ops
}

func (o SeqDelete) rebuild(r seqResult) []Op {
	ops := make([]Op, 0, r.n)
	for _, s := range r.shapes[:r.n] {
		ops = append(ops, SeqDelete{Pos: s.pos, N: s.n})
	}
	return ops
}

func (o SeqSet) rebuild(r seqResult) []Op {
	ops := make([]Op, 0, r.n)
	for _, s := range r.shapes[:r.n] {
		ops = append(ops, SeqSet{Pos: s.pos, Elem: o.Elem})
	}
	return ops
}

// Transform implements Op.
func (o SeqInsert) Transform(other Op, otherPriority bool) []Op {
	b, ok := seqShapeOf(other)
	if !ok {
		mismatch(o, other)
	}
	a, _ := seqShapeOf(o)
	return o.rebuild(transformSeqShape(a, b, otherPriority))
}

// Transform implements Op.
func (o SeqDelete) Transform(other Op, otherPriority bool) []Op {
	b, ok := seqShapeOf(other)
	if !ok {
		mismatch(o, other)
	}
	a, _ := seqShapeOf(o)
	return o.rebuild(transformSeqShape(a, b, otherPriority))
}

// Transform implements Op.
func (o SeqSet) Transform(other Op, otherPriority bool) []Op {
	b, ok := seqShapeOf(other)
	if !ok {
		mismatch(o, other)
	}
	a, _ := seqShapeOf(o)
	return o.rebuild(transformSeqShape(a, b, otherPriority))
}

// ApplySeq applies a sequence operation to a slice and returns the updated
// slice. It is used by the mergeable list and queue structures and by tests.
func ApplySeq(s []any, op Op) ([]any, error) {
	switch v := op.(type) {
	case SeqInsert:
		if v.Pos < 0 || v.Pos > len(s) {
			return s, fmt.Errorf("ot: %s out of range for length %d", v, len(s))
		}
		out := make([]any, 0, len(s)+len(v.Elems))
		out = append(out, s[:v.Pos]...)
		out = append(out, v.Elems...)
		out = append(out, s[v.Pos:]...)
		return out, nil
	case SeqDelete:
		if v.N < 0 || v.Pos < 0 || v.Pos+v.N > len(s) {
			return s, fmt.Errorf("ot: %s out of range for length %d", v, len(s))
		}
		out := make([]any, 0, len(s)-v.N)
		out = append(out, s[:v.Pos]...)
		out = append(out, s[v.Pos+v.N:]...)
		return out, nil
	case SeqSet:
		if v.Pos < 0 || v.Pos >= len(s) {
			return s, fmt.Errorf("ot: %s out of range for length %d", v, len(s))
		}
		out := make([]any, len(s))
		copy(out, s)
		out[v.Pos] = v.Elem
		return out, nil
	}
	return s, fmt.Errorf("ot: %s is not a sequence operation", op.Kind())
}

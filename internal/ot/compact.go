package ot

// Compaction merges adjacent, sequentially composed operations into
// single equivalent operations before they are transformed and shipped
// upward at merge time. The transformation control algorithm is quadratic
// in the number of operations on each side, so collapsing runs — a queue
// drained with 100 pops is 100 del(0,1) ops but one del(0,100) — directly
// cuts merge cost and history growth. Compaction is applied to a task's
// outgoing contribution only; committed history positions never move, so
// the version bookkeeping (bases, floors) is unaffected.
//
// Soundness: compact(a·b) must have the same effect as a·b both when
// applied directly and after transformation against any concurrent
// sequence. The rules below only merge pairs whose composition is exactly
// expressible as one operation of the same family; the property test
// TestCompactTransformEquivalence checks effect-equality under random
// concurrent histories.

// CompactSeq rewrites ops (a sequentially composed operation list from
// one structure's log) into an equivalent, usually shorter list.
// Operations it does not understand pass through unchanged.
func CompactSeq(ops []Op) []Op {
	if len(ops) < 2 {
		return ops
	}
	// First check whether anything compacts at all: most merge-time logs
	// (scattered overwrites, alternating positions) do not, and returning
	// the input slice unchanged keeps the hot merge path allocation-free.
	// Compaction is strictly pairwise-adjacent, so a scan over adjacent
	// pairs is exact, not a heuristic.
	compactable := false
	for i := 1; i < len(ops); i++ {
		if _, ok := tryMergeAdjacent(ops[i-1], ops[i]); ok {
			compactable = true
			break
		}
	}
	if !compactable {
		return ops
	}
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if len(out) > 0 {
			if merged, ok := tryMergeAdjacent(out[len(out)-1], op); ok {
				if merged == nil {
					out = out[:len(out)-1] // the pair cancelled out
				} else {
					out[len(out)-1] = merged
				}
				continue
			}
		}
		out = append(out, op)
	}
	return out
}

// tryMergeAdjacent merges two sequentially adjacent operations when their
// composition is one operation. A nil, true result means the pair is a
// no-op.
func tryMergeAdjacent(a, b Op) (Op, bool) {
	switch x := a.(type) {
	case SeqInsert:
		if y, ok := b.(SeqInsert); ok {
			// Insert into (or adjacent to) the span just inserted: splice.
			if y.Pos >= x.Pos && y.Pos <= x.Pos+len(x.Elems) {
				elems := make([]any, 0, len(x.Elems)+len(y.Elems))
				k := y.Pos - x.Pos
				elems = append(elems, x.Elems[:k]...)
				elems = append(elems, y.Elems...)
				elems = append(elems, x.Elems[k:]...)
				return SeqInsert{Pos: x.Pos, Elems: elems}, true
			}
		}
		if y, ok := b.(SeqDelete); ok {
			// Deleting entirely within the span just inserted removes
			// elements no concurrent operation has ever observed (any server
			// range overlapping the span is split around it during
			// transformation), so the pair compacts to the surviving insert —
			// and a producer/consumer log that pushes then pops everything
			// cancels to nothing. Ranges reaching outside the span touch
			// pre-existing state and must not compact.
			if y.Pos >= x.Pos && y.Pos+y.N <= x.Pos+len(x.Elems) {
				if y.N == len(x.Elems) {
					return nil, true
				}
				k := y.Pos - x.Pos
				elems := make([]any, 0, len(x.Elems)-y.N)
				elems = append(elems, x.Elems[:k]...)
				elems = append(elems, x.Elems[k+y.N:]...)
				return SeqInsert{Pos: x.Pos, Elems: elems}, true
			}
		}
	case SeqDelete:
		if y, ok := b.(SeqDelete); ok && y.Pos == x.Pos {
			// Deleting again at the same position extends the range.
			return SeqDelete{Pos: x.Pos, N: x.N + y.N}, true
		}
	case TextInsert:
		if y, ok := b.(TextInsert); ok {
			xr := []rune(x.Text)
			if y.Pos >= x.Pos && y.Pos <= x.Pos+len(xr) {
				k := y.Pos - x.Pos
				return TextInsert{Pos: x.Pos, Text: string(xr[:k]) + y.Text + string(xr[k:])}, true
			}
		}
		if y, ok := b.(TextDelete); ok {
			// Rune-level mirror of the SeqInsert/SeqDelete rule above.
			xr := []rune(x.Text)
			if y.Pos >= x.Pos && y.Pos+y.N <= x.Pos+len(xr) {
				if y.N == len(xr) {
					return nil, true
				}
				k := y.Pos - x.Pos
				return TextInsert{Pos: x.Pos, Text: string(xr[:k]) + string(xr[k+y.N:])}, true
			}
		}
	case TextDelete:
		if y, ok := b.(TextDelete); ok && y.Pos == x.Pos {
			return TextDelete{Pos: x.Pos, N: x.N + y.N}, true
		}
	case CounterAdd:
		if y, ok := b.(CounterAdd); ok {
			if x.Delta+y.Delta == 0 {
				return nil, true
			}
			return CounterAdd{Delta: x.Delta + y.Delta}, true
		}
	case RegisterSet:
		if y, ok := b.(RegisterSet); ok {
			return y, true // last assignment wins
		}
	case MapSet:
		if y, ok := b.(MapSet); ok && y.Key == x.Key {
			return y, true
		}
		if y, ok := b.(MapDelete); ok && y.Key == x.Key {
			return y, true // set then delete = delete
		}
	case MapDelete:
		// delete-then-set must NOT compact to the set alone: the delete
		// absorbs a concurrent server delete during transformation,
		// shielding the re-set; dropping it changes the merge result.
		if y, ok := b.(MapDelete); ok && y.Key == x.Key {
			return y, true // idempotent
		}
	case SetAdd:
		if y, ok := b.(SetRemove); ok && y.Elem == x.Elem {
			return y, true // add then remove = remove
		}
		if y, ok := b.(SetAdd); ok && y.Elem == x.Elem {
			return y, true
		}
	case SetRemove:
		// remove-then-add must NOT compact (same shielding effect as the
		// map case above).
		if y, ok := b.(SetRemove); ok && y.Elem == x.Elem {
			return y, true
		}
	}
	return nil, false
}

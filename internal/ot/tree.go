package ot

import (
	"fmt"
	"strings"
)

// TreeNode is the value type handled by the tree operation family. A tree
// is an ordered hierarchy: every node holds a value and an ordered child
// list, and nodes are addressed by the path of child indices from the root.
// This mirrors the tree OT algebras of Ignat & Norrie (treeOPT), one of the
// structures the paper lists as mergeable.
type TreeNode struct {
	Value    any
	Children []*TreeNode
}

// CloneTree deep-copies a subtree. Values are copied by assignment, so
// value payloads should be immutable or value types.
func CloneTree(n *TreeNode) *TreeNode {
	if n == nil {
		return nil
	}
	c := &TreeNode{Value: n.Value}
	if len(n.Children) > 0 {
		c.Children = make([]*TreeNode, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = CloneTree(ch)
		}
	}
	return c
}

// TreeInsert inserts Subtree as a child of the node addressed by the path
// prefix Path[:len-1], at sibling index Path[len-1].
type TreeInsert struct {
	Path    []int
	Subtree *TreeNode
}

// TreeDelete removes the node (and its whole subtree) addressed by Path.
type TreeDelete struct {
	Path []int
}

// TreeSet overwrites the value of the node addressed by Path. An empty path
// addresses the root.
type TreeSet struct {
	Path  []int
	Value any
}

// Kind implements Op.
func (o TreeInsert) Kind() Kind { return KindTreeInsert }

// Kind implements Op.
func (o TreeDelete) Kind() Kind { return KindTreeDelete }

// Kind implements Op.
func (o TreeSet) Kind() Kind { return KindTreeSet }

func pathString(p []int) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "/" + strings.Join(parts, "/")
}

func (o TreeInsert) String() string { return fmt.Sprintf("tins(%s)", pathString(o.Path)) }
func (o TreeDelete) String() string { return fmt.Sprintf("tdel(%s)", pathString(o.Path)) }
func (o TreeSet) String() string    { return fmt.Sprintf("tset(%s,%v)", pathString(o.Path), o.Value) }

func clonePath(p []int) []int {
	out := make([]int, len(p))
	copy(out, p)
	return out
}

// pathHasPrefix reports whether path starts with (or equals) prefix.
func pathHasPrefix(path, prefix []int) bool {
	if len(path) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if path[i] != v {
			return false
		}
	}
	return true
}

// transformPathAgainstInsert shifts path to account for an insertion at
// insPath. selfIsInsert and otherPriority settle ties between two inserts
// at the same slot. The boolean result is always true (an insertion never
// invalidates another path).
func transformPathAgainstInsert(path, insPath []int, selfIsInsert, otherPriority bool) []int {
	d := len(insPath) - 1
	if len(path) <= d || !pathHasPrefix(path[:d], insPath[:d]) {
		return path
	}
	p := clonePath(path)
	switch {
	case p[d] > insPath[d]:
		p[d]++
	case p[d] == insPath[d]:
		// A tie only matters between two insertions aimed at the same
		// sibling slot. Any other operation — including an insertion whose
		// path continues deeper — addresses the pre-existing node at this
		// index, which the insertion shifts right.
		if !(selfIsInsert && len(p) == d+1) || otherPriority {
			p[d]++
		}
	}
	return p
}

// transformPathAgainstDelete shifts path to account for the removal of the
// subtree at delPath. It returns ok=false when path addressed the deleted
// node or something inside it, in which case the operation is absorbed.
func transformPathAgainstDelete(path, delPath []int, selfIsInsert bool) ([]int, bool) {
	d := len(delPath) - 1
	if len(path) <= d || !pathHasPrefix(path[:d], delPath[:d]) {
		return path, true
	}
	if path[d] > delPath[d] {
		p := clonePath(path)
		p[d]--
		return p, true
	}
	if path[d] < delPath[d] {
		return path, true
	}
	// path[d] == delPath[d]: path points at the deleted node or below it.
	if len(path) == len(delPath) && selfIsInsert {
		// An insertion at exactly the deleted node's slot targets the gap
		// among the siblings, not the vanished node; it stays valid.
		return path, true
	}
	if pathHasPrefix(path, delPath) {
		return nil, false
	}
	return path, true
}

func treeTransform(o Op, path []int, other Op, selfIsInsert, otherPriority bool, rebuild func([]int) Op) []Op {
	switch v := other.(type) {
	case TreeInsert:
		return []Op{rebuild(transformPathAgainstInsert(path, v.Path, selfIsInsert, otherPriority))}
	case TreeDelete:
		p, ok := transformPathAgainstDelete(path, v.Path, selfIsInsert)
		if !ok {
			return nil
		}
		return []Op{rebuild(p)}
	case TreeSet:
		if s, isSet := o.(TreeSet); isSet && otherPriority && pathsEqual(s.Path, v.Path) {
			// Concurrent writes to the same node's value: priority wins.
			return nil
		}
		return []Op{o}
	default:
		mismatch(o, other)
		return nil
	}
}

func pathsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Transform implements Op.
func (o TreeInsert) Transform(other Op, otherPriority bool) []Op {
	return treeTransform(o, o.Path, other, true, otherPriority, func(p []int) Op {
		return TreeInsert{Path: p, Subtree: o.Subtree}
	})
}

// Transform implements Op.
func (o TreeDelete) Transform(other Op, otherPriority bool) []Op {
	return treeTransform(o, o.Path, other, false, otherPriority, func(p []int) Op {
		return TreeDelete{Path: p}
	})
}

// Transform implements Op.
func (o TreeSet) Transform(other Op, otherPriority bool) []Op {
	return treeTransform(o, o.Path, other, false, otherPriority, func(p []int) Op {
		return TreeSet{Path: p, Value: o.Value}
	})
}

// ApplyTree applies a tree operation to root and returns the updated root.
// The root node itself cannot be inserted or deleted, only its value set.
func ApplyTree(root *TreeNode, op Op) (*TreeNode, error) {
	switch v := op.(type) {
	case TreeInsert:
		if len(v.Path) == 0 {
			return root, fmt.Errorf("ot: %s cannot replace the root", v)
		}
		parent, err := treeNodeAt(root, v.Path[:len(v.Path)-1])
		if err != nil {
			return root, fmt.Errorf("ot: %s: %w", v, err)
		}
		idx := v.Path[len(v.Path)-1]
		if idx < 0 || idx > len(parent.Children) {
			return root, fmt.Errorf("ot: %s child index out of range (have %d children)", v, len(parent.Children))
		}
		sub := CloneTree(v.Subtree)
		parent.Children = append(parent.Children, nil)
		copy(parent.Children[idx+1:], parent.Children[idx:])
		parent.Children[idx] = sub
		return root, nil
	case TreeDelete:
		if len(v.Path) == 0 {
			return root, fmt.Errorf("ot: %s cannot delete the root", v)
		}
		parent, err := treeNodeAt(root, v.Path[:len(v.Path)-1])
		if err != nil {
			return root, fmt.Errorf("ot: %s: %w", v, err)
		}
		idx := v.Path[len(v.Path)-1]
		if idx < 0 || idx >= len(parent.Children) {
			return root, fmt.Errorf("ot: %s child index out of range (have %d children)", v, len(parent.Children))
		}
		parent.Children = append(parent.Children[:idx], parent.Children[idx+1:]...)
		return root, nil
	case TreeSet:
		n, err := treeNodeAt(root, v.Path)
		if err != nil {
			return root, fmt.Errorf("ot: %s: %w", v, err)
		}
		n.Value = v.Value
		return root, nil
	}
	return root, fmt.Errorf("ot: %s is not a tree operation", op.Kind())
}

func treeNodeAt(root *TreeNode, path []int) (*TreeNode, error) {
	n := root
	for depth, idx := range path {
		if n == nil {
			return nil, fmt.Errorf("nil node at depth %d", depth)
		}
		if idx < 0 || idx >= len(n.Children) {
			return nil, fmt.Errorf("index %d out of range at depth %d (have %d children)", idx, depth, len(n.Children))
		}
		n = n.Children[idx]
	}
	if n == nil {
		return nil, fmt.Errorf("nil node at path end")
	}
	return n, nil
}

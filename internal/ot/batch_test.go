package ot

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// opsEqual is exact operation-list equality with nil and empty identified
// (both engines return nil for fully absorbed sides, but pass-through
// cases can surface the caller's empty non-nil slice).
func opsEqual(a, b []Op) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// bothEngines runs f once with the batched engine and once with the
// pairwise fallback, restoring the ambient setting.
func bothEngines(fn func(batched bool) ([]Op, []Op)) (aB, bB, aP, bP []Op) {
	prev := SetBatchedTransform(true)
	aB, bB = fn(true)
	SetBatchedTransform(false)
	aP, bP = fn(false)
	SetBatchedTransform(prev)
	return
}

// checkEngineAgreement asserts the batched and pairwise engines produce
// operation-for-operation identical transforms for (a, b), and that the
// transforms actually converge (TP1) with identical fingerprints.
func checkEngineAgreement(t *testing.T, base []any, a, b []Op) bool {
	t.Helper()
	aB, bB, aP, bP := bothEngines(func(bool) ([]Op, []Op) { return TransformSeqs(a, b) })
	if !opsEqual(aB, aP) || !opsEqual(bB, bP) {
		t.Logf("engines disagree on TransformSeqs:\n  a=%v b=%v\n  batched  a'=%v b'=%v\n  pairwise a'=%v b'=%v",
			a, b, aB, bB, aP, bP)
		return false
	}
	gB, _, gP, _ := bothEngines(func(bool) ([]Op, []Op) { return TransformAgainst(a, b), nil })
	if !opsEqual(gB, gP) {
		t.Logf("engines disagree on TransformAgainst:\n  a=%v b=%v\n  batched %v\n  pairwise %v", a, b, gB, gP)
		return false
	}
	left, errL := applyAll(base, b)
	if errL == nil {
		left, errL = applyAll(left, aB)
	}
	right, errR := applyAll(base, a)
	if errR == nil {
		right, errR = applyAll(right, bB)
	}
	if errL != nil || errR != nil {
		t.Logf("transformed ops failed to apply: a=%v b=%v: %v / %v", a, b, errL, errR)
		return false
	}
	if !equalStates(left, right) {
		t.Logf("TP1 violated under batched engine: a=%v b=%v: %v != %v", a, b, left, right)
		return false
	}
	lFP := FingerprintOps(left)
	if rFP := FingerprintOps(right); lFP != rFP {
		t.Logf("fingerprints diverge: %x != %x", lFP, rFP)
		return false
	}
	return true
}

// FingerprintOps hashes a sequence state for the differential tests.
func FingerprintOps(s []any) string { return fmt.Sprintf("%v", s) }

// genRunHistory generates a sequentially valid history biased heavily
// toward runs — tail appends, typing runs, pop runs, front-to-back block
// deletes, ascending overwrite sweeps — with occasional lone random
// operations to hit run boundaries.
func genRunHistory(r *rand.Rand, startLen, maxRuns int, tag int) []Op {
	l := startLen
	var ops []Op
	payload := tag * 10000
	for i := 0; i < maxRuns; i++ {
		k := 1 + r.Intn(6)
		switch r.Intn(6) {
		case 0: // tail append run
			for j := 0; j < k; j++ {
				payload++
				ops = append(ops, SeqInsert{Pos: l, Elems: []any{payload}})
				l++
			}
		case 1: // typing run at an interior point
			p := r.Intn(l + 1)
			for j := 0; j < k; j++ {
				payload++
				ops = append(ops, SeqInsert{Pos: p + j, Elems: []any{payload}})
				l++
			}
		case 2: // pop run
			for j := 0; j < k && l > 0; j++ {
				ops = append(ops, SeqDelete{Pos: 0, N: 1})
				l--
			}
		case 3: // block delete, front to back at a fixed position
			if l == 0 {
				continue
			}
			p := r.Intn(l)
			for j := 0; j < k && p < l; j++ {
				ops = append(ops, SeqDelete{Pos: p, N: 1})
				l--
			}
		case 4: // ascending overwrite sweep
			if l == 0 {
				continue
			}
			p := r.Intn(l)
			for j := 0; j < k && p+j < l; j++ {
				payload++
				ops = append(ops, SeqSet{Pos: p + j, Elem: payload})
			}
		default: // lone random op to break runs at awkward places
			if op := randomSeqOp(r, l); op != nil {
				switch v := op.(type) {
				case SeqInsert:
					l += len(v.Elems)
				case SeqDelete:
					l -= v.N
				}
				ops = append(ops, op)
			}
		}
	}
	return ops
}

// TestBatchedTransformMatchesPairwise is the main differential property:
// run-heavy concurrent histories transform identically under both engines.
func TestBatchedTransformMatchesPairwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12)
		base := make([]any, n)
		for i := range base {
			base[i] = i
		}
		a := genRunHistory(r, n, 1+r.Intn(4), 1)
		b := genRunHistory(r, n, 1+r.Intn(4), 2)
		return checkEngineAgreement(t, base, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedTransformRandomHistories repeats the differential property on
// the fully random (non-run-biased) generator used by the rest of the OT
// suite, so singleton runs and degenerate shapes get equal coverage.
func TestBatchedTransformRandomHistories(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randomState(r)
		gen := func() []Op {
			cur := append([]any(nil), base...)
			var ops []Op
			for i := 0; i < r.Intn(8); i++ {
				op := randomSeqOp(r, len(cur))
				next, err := ApplySeq(cur, op)
				if err != nil {
					break
				}
				cur = next
				ops = append(ops, op)
			}
			return ops
		}
		return checkEngineAgreement(t, base, gen(), gen())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedTransformBoundaries pins the hand-derived closed-form guard
// boundaries of runCellUniform: server runs landing exactly at a client
// run's start, end, one inside either edge, ties at equal positions, and
// interleavings that must explode.
func TestBatchedTransformBoundaries(t *testing.T) {
	insRun := func(p, n, tag int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = SeqInsert{Pos: p + i, Elems: []any{tag + i}}
		}
		return ops
	}
	delRun := func(p, n int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = SeqDelete{Pos: p, N: 1}
		}
		return ops
	}
	setRun := func(p, n, tag int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = SeqSet{Pos: p + i, Elem: tag + i}
		}
		return ops
	}
	base := make([]any, 16)
	for i := range base {
		base[i] = -i
	}
	kinds := []func(p, n, tag int) []Op{
		insRun,
		func(p, n, _ int) []Op { return delRun(p, n) },
		setRun,
	}
	// Every run-kind pair at every critical relative offset of the server
	// run against a client run occupying [6, 6+4).
	for ki, clientKind := range kinds {
		for kj, serverKind := range kinds {
			for _, q := range []int{0, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14} {
				for _, m := range []int{1, 2, 4} {
					if kj != 0 && q+m > len(base) {
						continue // delete/overwrite run would walk off the base
					}
					a := clientKind(6, 4, 100)
					b := serverKind(q, m, 200)
					if !checkEngineAgreement(t, base, a, b) {
						t.Fatalf("boundary case failed: clientKind=%d serverKind=%d q=%d m=%d", ki, kj, q, m)
					}
				}
			}
		}
	}
	// Multi-run histories against each other, including back-to-back runs
	// whose boundary falls inside the other side's run.
	multi := [][]Op{
		append(insRun(2, 3, 300), delRun(0, 2)...),
		append(delRun(4, 3), insRun(4, 2, 400)...),
		append(setRun(1, 3, 500), insRun(8, 3, 600)...),
		append(insRun(16, 3, 700), setRun(0, 2, 800)...),
	}
	for i, a := range multi {
		for j, b := range multi {
			if !checkEngineAgreement(t, base, a, b) {
				t.Fatalf("multi-run case (%d, %d) failed", i, j)
			}
		}
	}
}

// TestMergeScratchTransform checks the arena-backed transform: results
// match the package-level TransformAgainst, stay valid across further
// transforms on the same scratch, and the scratch is reusable after Reset.
func TestMergeScratchTransform(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sc := NewMergeScratch()
	for round := 0; round < 200; round++ {
		n := r.Intn(10)
		base := make([]any, n)
		for i := range base {
			base[i] = i
		}
		type pair struct{ client, server, want, got []Op }
		var pairs []pair
		for k := 0; k < 1+r.Intn(4); k++ {
			c := genRunHistory(r, n, 1+r.Intn(3), 1)
			s := genRunHistory(r, n, 1+r.Intn(3), 2)
			pairs = append(pairs, pair{client: c, server: s, want: TransformAgainst(c, s)})
		}
		// All transforms of one "merge" share the scratch; earlier windows
		// must survive later transforms.
		for i := range pairs {
			pairs[i].got = sc.TransformAgainst(pairs[i].client, pairs[i].server)
		}
		for i, p := range pairs {
			if !opsEqual(p.got, p.want) {
				t.Fatalf("round %d pair %d: scratch transform %v != %v (client=%v server=%v)",
					round, i, p.got, p.want, p.client, p.server)
			}
		}
		sc.Reset()
	}
}

// FuzzBatchedTransform feeds machine-generated concurrent histories to
// both engines and requires bit-identical transforms plus TP1 convergence
// — the fuzz companion to TestBatchedTransformMatchesPairwise, sharing
// decodeFuzzOps with FuzzListTransform so crashes minimize to the same
// compact encoding.
func FuzzBatchedTransform(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0x00, 0, 0, 0x00, 1, 0, 0x00, 2, 0, 0x80, 0, 0, 0x80, 1, 0}) // append run vs append run
	f.Add([]byte{7, 0x01, 0, 0, 0x01, 0, 0, 0x81, 0, 0, 0x81, 0, 0})             // pop run vs pop run
	f.Add([]byte{6, 0x00, 3, 2, 0x80, 4, 1})                                     // server insert inside client run
	f.Add([]byte{5, 0x02, 0, 1, 0x02, 1, 2, 0x82, 1, 3, 0x82, 2, 4})             // overwrite sweeps colliding
	f.Add([]byte{8, 0x01, 2, 1, 0x01, 2, 1, 0x80, 3, 2, 0x81, 1, 4})             // block delete vs straddling delete
	f.Add([]byte{4, 0x00, 2, 1, 0x00, 3, 1, 0x81, 1, 2, 0x80, 2, 1})             // typing run vs delete across base
	f.Fuzz(func(t *testing.T, data []byte) {
		base, a, b := decodeFuzzOps(data)
		if !checkEngineAgreement(t, base, a, b) {
			t.Fatalf("batched/pairwise divergence (see log)")
		}
	})
}

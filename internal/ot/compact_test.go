package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompactSeqBasics(t *testing.T) {
	cases := []struct {
		name string
		in   []Op
		want []Op
	}{
		{"empty", nil, nil},
		{"single", []Op{SeqDelete{Pos: 0, N: 1}}, []Op{SeqDelete{Pos: 0, N: 1}}},
		{"queue-pops", []Op{SeqDelete{Pos: 0, N: 1}, SeqDelete{Pos: 0, N: 1}, SeqDelete{Pos: 0, N: 1}},
			[]Op{SeqDelete{Pos: 0, N: 3}}},
		{"appends", []Op{SeqInsert{Pos: 2, Elems: list(1)}, SeqInsert{Pos: 3, Elems: list(2)}},
			[]Op{SeqInsert{Pos: 2, Elems: list(1, 2)}}},
		{"insert-splice", []Op{SeqInsert{Pos: 2, Elems: list(1, 3)}, SeqInsert{Pos: 3, Elems: list(2)}},
			[]Op{SeqInsert{Pos: 2, Elems: list(1, 2, 3)}}},
		{"separate-inserts", []Op{SeqInsert{Pos: 0, Elems: list(1)}, SeqInsert{Pos: 5, Elems: list(2)}},
			[]Op{SeqInsert{Pos: 0, Elems: list(1)}, SeqInsert{Pos: 5, Elems: list(2)}}},
		{"counter-sum", []Op{CounterAdd{Delta: 2}, CounterAdd{Delta: 3}}, []Op{CounterAdd{Delta: 5}}},
		{"counter-cancel", []Op{CounterAdd{Delta: 2}, CounterAdd{Delta: -2}}, nil},
		{"register-last", []Op{RegisterSet{Value: 1}, RegisterSet{Value: 2}}, []Op{RegisterSet{Value: 2}}},
		{"map-set-set", []Op{MapSet{Key: "k", Value: 1}, MapSet{Key: "k", Value: 2}}, []Op{MapSet{Key: "k", Value: 2}}},
		{"map-set-del", []Op{MapSet{Key: "k", Value: 1}, MapDelete{Key: "k"}}, []Op{MapDelete{Key: "k"}}},
		{"map-del-set-kept", []Op{MapDelete{Key: "k"}, MapSet{Key: "k", Value: 2}},
			[]Op{MapDelete{Key: "k"}, MapSet{Key: "k", Value: 2}}}, // unsound to compact: see tryMergeAdjacent
		{"set-rem-add-kept", []Op{SetRemove{Elem: "x"}, SetAdd{Elem: "x"}},
			[]Op{SetRemove{Elem: "x"}, SetAdd{Elem: "x"}}},
		{"map-other-key", []Op{MapSet{Key: "k", Value: 1}, MapSet{Key: "j", Value: 2}},
			[]Op{MapSet{Key: "k", Value: 1}, MapSet{Key: "j", Value: 2}}},
		{"set-add-remove", []Op{SetAdd{Elem: "x"}, SetRemove{Elem: "x"}}, []Op{SetRemove{Elem: "x"}}},
		{"text-append", []Op{TextInsert{Pos: 0, Text: "ab"}, TextInsert{Pos: 2, Text: "cd"}},
			[]Op{TextInsert{Pos: 0, Text: "abcd"}}},
		{"text-del-run", []Op{TextDelete{Pos: 1, N: 2}, TextDelete{Pos: 1, N: 1}}, []Op{TextDelete{Pos: 1, N: 3}}},
	}
	for _, c := range cases {
		got := CompactSeq(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: CompactSeq(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// equalStates compares two sequence states, treating nil and empty as the
// same state: a fully-cancelled history (insert-then-delete-everything
// compacts to no ops at all) leaves one side with the untouched nil base
// and the other with an emptied non-nil slice.
func equalStates(a, b []any) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestCompactEffectEquivalence checks that a compacted sequence applied
// directly produces the same state as the original.
func TestCompactEffectEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		cur := append([]any(nil), s...)
		var ops []Op
		for i := 0; i < r.Intn(8); i++ {
			op := randomSeqOp(r, len(cur))
			next, err := ApplySeq(cur, op)
			if err != nil {
				break
			}
			cur = next
			ops = append(ops, op)
		}
		compacted := CompactSeq(ops)
		direct, err := applyAll(s, compacted)
		if err != nil {
			t.Logf("seed %d: compacted apply failed: %v (ops %v -> %v)", seed, err, ops, compacted)
			return false
		}
		if !equalStates(direct, cur) {
			t.Logf("seed %d: ops %v -> %v: %v != %v", seed, ops, compacted, direct, cur)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2500}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactTransformEquivalence is the critical soundness property for
// using compaction at merge time: transforming the compacted sequence
// against a concurrent server history must produce the same final state
// as transforming the original sequence.
func TestCompactTransformEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)

		genSeq := func() []Op {
			cur := append([]any(nil), s...)
			var ops []Op
			for i := 0; i < r.Intn(6); i++ {
				op := randomSeqOp(r, len(cur))
				next, err := ApplySeq(cur, op)
				if err != nil {
					break
				}
				cur = next
				ops = append(ops, op)
			}
			return ops
		}
		client := genSeq()
		server := genSeq()

		base, err := applyAll(s, server)
		if err != nil {
			return true // skip degenerate server
		}
		plain, err := applyAll(base, TransformAgainst(client, server))
		if err != nil {
			t.Logf("seed %d: plain transform apply failed: %v", seed, err)
			return false
		}
		compacted, err := applyAll(base, TransformAgainst(CompactSeq(client), server))
		if err != nil {
			t.Logf("seed %d: compacted transform apply failed: %v", seed, err)
			return false
		}
		if !equalStates(plain, compacted) {
			t.Logf("seed %d: S=%v client=%v (compact %v) server=%v: %v != %v",
				seed, s, client, CompactSeq(client), server, plain, compacted)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactScalarTransformEquivalence repeats the soundness property
// for the scalar families.
func TestCompactScalarTransformEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(n int) []Op {
			var ops []Op
			for i := 0; i < n; i++ {
				ops = append(ops, randomScalarOp(r))
			}
			return ops
		}
		// Single family per side, as the runtime guarantees.
		pick := r.Intn(4)
		filter := func(ops []Op) []Op {
			var out []Op
			for _, op := range ops {
				switch op.Kind() {
				case KindCounterAdd:
					if pick == 0 {
						out = append(out, op)
					}
				case KindMapSet, KindMapDelete:
					if pick == 1 {
						out = append(out, op)
					}
				case KindSetAdd, KindSetRemove:
					if pick == 2 {
						out = append(out, op)
					}
				case KindRegisterSet:
					if pick == 3 {
						out = append(out, op)
					}
				}
			}
			return out
		}
		client := filter(gen(8))
		server := filter(gen(8))

		base := newScalarModel()
		base.apply(MapSet{Key: "k1", Value: 0}, SetAdd{Elem: "k1"}, RegisterSet{Value: -1})
		base.apply(server...)

		plain := base.clone()
		plain.apply(TransformAgainst(client, server)...)
		comp := base.clone()
		comp.apply(TransformAgainst(CompactSeq(client), server)...)
		if !plain.equal(comp) {
			t.Logf("seed %d: client=%v server=%v: %+v != %+v", seed, client, server, plain, comp)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

package ot

import (
	"math/rand"
	"reflect"
	"testing"
)

// Randomized property tests for the transformation functions and the
// control algorithm. The fixed-example TP1 tests elsewhere pin the known
// corner cases; these throw thousands of random operation pairs and
// sequences at the same identities so unknown corners surface too. All
// generators are seeded, so a failure report reproduces exactly.
//
// The properties exercised:
//
//	TP1:        apply(apply(S, a), b') == apply(apply(S, b), a')
//	compaction: transform(compact(c), h) has the effect of transform(c, h)
//
// which are precisely the two identities the merge step relies on
// (control.go documents why TP2 is never needed).

// randSeqOp generates one sequence operation valid for a state of length n,
// and returns the operation plus the state length after applying it.
// Deletions and sets need a non-empty state; generation retries via insert.
func randSeqOp(r *rand.Rand, n int) (Op, int) {
	roll := r.Intn(3)
	if n == 0 {
		roll = 0
	}
	switch roll {
	case 0:
		k := 1 + r.Intn(3)
		elems := make([]any, k)
		for i := range elems {
			elems[i] = r.Intn(100)
		}
		return SeqInsert{Pos: r.Intn(n + 1), Elems: elems}, n + k
	case 1:
		pos := r.Intn(n)
		k := 1 + r.Intn(n-pos)
		return SeqDelete{Pos: pos, N: k}, n - k
	default:
		return SeqSet{Pos: r.Intn(n), Elem: r.Intn(100)}, n
	}
}

// randSeqOps generates a sequence of count operations, each valid after the
// previous ones, starting from a state of length n.
func randSeqOps(r *rand.Rand, n, count int) []Op {
	ops := make([]Op, 0, count)
	for i := 0; i < count; i++ {
		op, next := randSeqOp(r, n)
		ops = append(ops, op)
		n = next
	}
	return ops
}

func randState(r *rand.Rand, n int) []any {
	s := make([]any, n)
	for i := range s {
		s[i] = i * 10
	}
	return s
}

func applySeqAll(t *testing.T, s []any, ops []Op) []any {
	t.Helper()
	var err error
	for _, op := range ops {
		s, err = ApplySeq(s, op)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
	}
	return s
}

// TestPropertyTP1ListPairs throws random concurrent operation pairs at
// TransformPair and checks convergence from every reachable base state.
func TestPropertyTP1ListPairs(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 5000; i++ {
		n := r.Intn(6)
		base := randState(r, n)
		a, _ := randSeqOp(r, n)
		b, _ := randSeqOp(r, n)
		aT, bT := TransformPair(a, b)
		left := applySeqAll(t, applySeqAll(t, base, []Op{a}), bT)
		right := applySeqAll(t, applySeqAll(t, base, []Op{b}), aT)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("iter %d: TP1 violated for a=%v b=%v on %v:\n  a·b' = %v\n  b·a' = %v",
				i, a, b, base, left, right)
		}
	}
}

// TestPropertyTP1ListSequences checks the control algorithm's convergence
// identity for random concurrent sequences (splits and absorptions
// included), which also exercises the shape fast path against the generic
// recursion through TransformSeqs' internal dispatch.
func TestPropertyTP1ListSequences(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 1500; i++ {
		n := r.Intn(6)
		base := randState(r, n)
		a := randSeqOps(r, n, 1+r.Intn(4))
		b := randSeqOps(r, n, 1+r.Intn(4))
		aT, bT := TransformSeqs(a, b)
		left := applySeqAll(t, applySeqAll(t, base, a), bT)
		right := applySeqAll(t, applySeqAll(t, base, b), aT)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("iter %d: TP1 violated for a=%v b=%v on %v:\n  a·b' = %v\n  b·a' = %v",
				i, a, b, base, left, right)
		}
	}
}

// randTextOp mirrors randSeqOp for the text family (rune positions).
func randTextOp(r *rand.Rand, n int) (Op, int) {
	alphabet := []rune("abπ≠z")
	if n == 0 || r.Intn(2) == 0 {
		k := 1 + r.Intn(3)
		text := make([]rune, k)
		for i := range text {
			text[i] = alphabet[r.Intn(len(alphabet))]
		}
		return TextInsert{Pos: r.Intn(n + 1), Text: string(text)}, n + k
	}
	pos := r.Intn(n)
	k := 1 + r.Intn(n-pos)
	return TextDelete{Pos: pos, N: k}, n - k
}

func propApplyText(t *testing.T, s []rune, ops []Op) []rune {
	t.Helper()
	var err error
	for _, op := range ops {
		s, err = ApplyText(s, op)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
	}
	return s
}

// TestPropertyTP1Text checks TP1 for random concurrent text edit
// sequences, including multi-rune payloads that make positions and payload
// lengths diverge (the classic off-by-one source in text OT).
func TestPropertyTP1Text(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 1500; i++ {
		n := r.Intn(6)
		base := []rune("héllo wörld"[:0])
		for j := 0; j < n; j++ {
			base = append(base, rune('à'+j))
		}
		genSeq := func(count int) []Op {
			ops := make([]Op, 0, count)
			l := n
			for j := 0; j < count; j++ {
				op, next := randTextOp(r, l)
				ops = append(ops, op)
				l = next
			}
			return ops
		}
		a := genSeq(1 + r.Intn(3))
		b := genSeq(1 + r.Intn(3))
		aT, bT := TransformSeqs(a, b)
		left := propApplyText(t, propApplyText(t, base, a), bT)
		right := propApplyText(t, propApplyText(t, base, b), aT)
		if string(left) != string(right) {
			t.Fatalf("iter %d: TP1 violated for a=%v b=%v on %q:\n  a·b' = %q\n  b·a' = %q",
				i, a, b, string(base), string(left), string(right))
		}
	}
}

// randTree builds a small random tree with n nodes.
func randTree(r *rand.Rand, n int) *TreeNode {
	root := &TreeNode{Value: 0}
	nodes := []*TreeNode{root}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		child := &TreeNode{Value: i}
		parent.Children = append(parent.Children, child)
		nodes = append(nodes, child)
	}
	return root
}

// treePaths collects the path of every node below the root (the root
// itself is only addressable by TreeSet's empty path).
func treePaths(root *TreeNode) [][]int {
	var paths [][]int
	var walk func(n *TreeNode, path []int)
	walk = func(n *TreeNode, path []int) {
		for i, c := range n.Children {
			p := append(append([]int(nil), path...), i)
			paths = append(paths, p)
			walk(c, p)
		}
	}
	walk(root, nil)
	return paths
}

// randTreeOp generates one tree operation valid against root, returning
// the op and the tree after applying it.
func randTreeOp(t *testing.T, r *rand.Rand, root *TreeNode, tag int) (Op, *TreeNode) {
	t.Helper()
	paths := treePaths(root)
	roll := r.Intn(3)
	if len(paths) == 0 {
		roll = 0
	}
	var op Op
	switch roll {
	case 0:
		// Insert at a random valid attachment point: any existing node's
		// child list, any index.
		parents := append([][]int{nil}, paths...)
		pp := parents[r.Intn(len(parents))]
		node, err := treeNodeAt(root, pp)
		if err != nil {
			t.Fatalf("path %v: %v", pp, err)
		}
		idx := r.Intn(len(node.Children) + 1)
		op = TreeInsert{
			Path:    append(append([]int(nil), pp...), idx),
			Subtree: &TreeNode{Value: 1000 + tag},
		}
	case 1:
		op = TreeDelete{Path: paths[r.Intn(len(paths))]}
	default:
		op = TreeSet{Path: paths[r.Intn(len(paths))], Value: 2000 + tag}
	}
	next, err := ApplyTree(CloneTree(root), op)
	if err != nil {
		t.Fatalf("apply %v: %v", op, err)
	}
	return op, next
}

// treeEqual is structural equality: same values, same child order. It
// deliberately does not distinguish a nil child slice from an empty one
// (deleting a node's last child leaves Children as a length-0 slice,
// which reflect.DeepEqual would treat as different from never-populated).
func treeEqual(a, b *TreeNode) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !reflect.DeepEqual(a.Value, b.Value) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !treeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func applyTreeAll(t *testing.T, root *TreeNode, ops []Op) *TreeNode {
	t.Helper()
	out := CloneTree(root)
	var err error
	for _, op := range ops {
		out, err = ApplyTree(out, op)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
	}
	return out
}

// TestPropertyTP1Tree checks TP1 for random concurrent edit sequences on
// random trees — sibling shifts, ancestor deletions absorbing whole
// subtree edits, and insert ties at the same path all occur by volume.
func TestPropertyTP1Tree(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 800; i++ {
		base := randTree(r, 1+r.Intn(6))
		genSeq := func(count, tag int) []Op {
			ops := make([]Op, 0, count)
			cur := base
			for j := 0; j < count; j++ {
				var op Op
				op, cur = randTreeOp(t, r, cur, tag*100+j)
				ops = append(ops, op)
			}
			return ops
		}
		a := genSeq(1+r.Intn(3), 1)
		b := genSeq(1+r.Intn(3), 2)
		aT, bT := TransformSeqs(a, b)
		left := applyTreeAll(t, applyTreeAll(t, base, a), bT)
		right := applyTreeAll(t, applyTreeAll(t, base, b), aT)
		if !treeEqual(left, right) {
			t.Fatalf("iter %d: TP1 violated for a=%v b=%v:\n  a·b' = %+v\n  b·a' = %+v",
				i, a, b, left, right)
		}
	}
}

// TestPropertyCompactDirectEquivalence: compact(c) has the same direct
// effect as c, for random sequentially composed sequences.
func TestPropertyCompactDirectEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for i := 0; i < 2000; i++ {
		n := r.Intn(6)
		base := randState(r, n)
		ops := randSeqOps(r, n, 1+r.Intn(6))
		compacted := CompactSeq(ops)
		raw := applySeqAll(t, base, ops)
		fast := applySeqAll(t, base, compacted)
		if !reflect.DeepEqual(raw, fast) {
			t.Fatalf("iter %d: compaction changed effect of %v (→ %v):\n  raw       %v\n  compacted %v",
				i, ops, compacted, raw, fast)
		}
	}
}

// TestPropertyCompactTransformEquivalence: transforming a compacted
// contribution against a random concurrent history yields the same final
// state as transforming the raw contribution — the exact soundness
// condition the merge path relies on when it compacts outgoing logs.
func TestPropertyCompactTransformEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 2000; i++ {
		n := r.Intn(6)
		base := randState(r, n)
		client := randSeqOps(r, n, 1+r.Intn(6))
		server := randSeqOps(r, n, 1+r.Intn(4))
		afterServer := applySeqAll(t, base, server)
		raw := applySeqAll(t, afterServer, TransformAgainst(client, server))
		fast := applySeqAll(t, afterServer, TransformAgainst(CompactSeq(client), server))
		if !reflect.DeepEqual(raw, fast) {
			t.Fatalf("iter %d: compact+transform diverged for client=%v server=%v:\n  raw  %v\n  fast %v",
				i, client, server, raw, fast)
		}
	}
}

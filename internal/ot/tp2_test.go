package ot

import (
	"reflect"
	"testing"
)

// The OT literature distinguishes two convergence properties:
//
//	TP1: apply(apply(S,a), T(b,a)) == apply(apply(S,b), T(a,b))
//	TP2: T(c, a·T(b,a)) == T(c, b·T(a,b))   (path independence)
//
// General peer-to-peer OT systems need both; TP2 is notoriously hard and
// most practical transform sets violate it. The Spawn & Merge runtime
// deliberately does NOT need TP2: every structure has a single linear
// committed history held by the owning task, and every child is
// transformed against one contiguous suffix of it — there is never a
// choice of transformation path. These tests document both halves of that
// design argument.

// TestTP2NotRequiredByLinearHistory shows the runtime's merge shape never
// evaluates two different transformation paths: merging children in any
// fixed order against the growing history is path-free by construction.
// We verify the stronger operational fact the runtime relies on: the
// committed history replayed from the base state always equals the
// incrementally merged state (already property-tested in
// TestThreeWayMergeLinearHistory); here we pin the textbook TP2 triple on
// the runtime's actual path for regression visibility.
func TestTP2NotRequiredByLinearHistory(t *testing.T) {
	base := list("a", "b")
	opA := SeqInsert{Pos: 0, Elems: list("x")} // child 1
	opB := SeqInsert{Pos: 0, Elems: list("y")} // child 2
	opC := SeqDelete{Pos: 1, N: 1}             // child 3

	// The runtime's only path: merge A, then B against [A], then C
	// against [A, B'].
	history := []Op{Op(opA)}
	bT := TransformAgainst([]Op{opB}, history)
	history = append(history, bT...)
	cT := TransformAgainst([]Op{opC}, history)
	history = append(history, cT...)

	state := mustApplySeq(t, base, history...)
	// Replay equals incremental merge — the linear-history invariant.
	replay := mustApplySeq(t, base, history...)
	if !reflect.DeepEqual(state, replay) {
		t.Fatalf("linear history not replayable: %v vs %v", state, replay)
	}
}

// TestTP2ViolationExists demonstrates that our transform functions (like
// nearly all deployed OT transform sets) do violate TP2 when used in a
// peer-to-peer fashion with divergent transformation paths — which is
// precisely why the runtime's design forbids that shape. If this test
// ever starts failing because TP2 "holds", the documentation claim above
// should be revisited, not the runtime.
func TestTP2ViolationExists(t *testing.T) {
	// The classic shape (found by random search, five violations in 2·10⁵
	// random triples): a deletion spanning two concurrent insertion
	// points collapses both inserts onto the same index, and the relative
	// order of the collapsed inserts then depends on the transformation
	// path.
	a := Op(SeqInsert{Pos: 3, Elems: list("X")})
	b := Op(SeqDelete{Pos: 1, N: 2})
	c := Op(SeqInsert{Pos: 1, Elems: list("Y")})

	// Path 1: c transformed against a · T(b,a).
	aT, bT := TransformPair(a, b)
	path1 := TransformAgainst([]Op{c}, append([]Op{a}, bT...))
	// Path 2: c transformed against b · T(a,b).
	path2 := TransformAgainst([]Op{c}, append([]Op{b}, aT...))

	// Both paths produce a transformed c; TP2 would demand they be equal
	// operations. Compare their effects on the common converged state.
	base := list("x", "y", "z")
	conv1 := mustApplySeq(t, base, append([]Op{a}, bT...)...)
	conv2 := mustApplySeq(t, base, append([]Op{b}, aT...)...)
	if !reflect.DeepEqual(conv1, conv2) {
		t.Fatalf("TP1 broken, cannot even test TP2: %v vs %v", conv1, conv2)
	}
	eff1 := mustApplySeq(t, conv1, path1...)
	eff2 := mustApplySeq(t, conv2, path2...)
	if reflect.DeepEqual(eff1, eff2) {
		t.Fatalf("expected the documented TP2 violation; transforms changed? eff=%v", eff1)
	}
	// Both orders keep all content; only the X/Y order differs — the
	// path-dependence TP2 forbids and linear histories make unreachable.
	t.Logf("documented TP2 violation: path1 -> %v, path2 -> %v", eff1, eff2)
}

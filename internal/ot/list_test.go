package ot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustApplySeq(t *testing.T, s []any, ops ...Op) []any {
	t.Helper()
	var err error
	for _, op := range ops {
		s, err = ApplySeq(s, op)
		if err != nil {
			t.Fatalf("apply %v: %v", op, err)
		}
	}
	return s
}

func list(vals ...any) []any { return vals }

// TestFigure1Divergence reproduces Figure 1 of the paper: applying the
// concurrent operations del(2) and ins(0,d) without transformation leaves
// the two sites in different states.
func TestFigure1Divergence(t *testing.T) {
	base := list("a", "b", "c")
	opA := SeqDelete{Pos: 2, N: 1}             // process A deletes "c"
	opB := SeqInsert{Pos: 0, Elems: list("d")} // process B inserts "d" at the front

	// Site A applies its own op, then B's raw op.
	siteA := mustApplySeq(t, base, opA, opB)
	// Site B applies its own op, then A's raw op.
	siteB := mustApplySeq(t, base, opB, opA)

	wantA := list("d", "a", "b")
	wantB := list("d", "a", "c")
	if !reflect.DeepEqual(siteA, wantA) {
		t.Fatalf("site A = %v, want %v", siteA, wantA)
	}
	if !reflect.DeepEqual(siteB, wantB) {
		t.Fatalf("site B = %v, want %v", siteB, wantB)
	}
	if reflect.DeepEqual(siteA, siteB) {
		t.Fatalf("sites unexpectedly converged without OT")
	}
}

// TestFigure2Convergence reproduces Figure 2: with operational
// transformation both sites converge to [d, a, b].
func TestFigure2Convergence(t *testing.T) {
	base := list("a", "b", "c")
	opA := SeqDelete{Pos: 2, N: 1}
	opB := SeqInsert{Pos: 0, Elems: list("d")}

	opAT, opBT := TransformPair(Op(opA), Op(opB))

	siteA := mustApplySeq(t, base, opA)
	siteA = mustApplySeq(t, siteA, opBT...)
	siteB := mustApplySeq(t, base, opB)
	siteB = mustApplySeq(t, siteB, opAT...)

	want := list("d", "a", "b")
	if !reflect.DeepEqual(siteA, want) {
		t.Fatalf("site A = %v, want %v", siteA, want)
	}
	if !reflect.DeepEqual(siteB, want) {
		t.Fatalf("site B = %v, want %v", siteB, want)
	}
	// The transformed delete must target index 3, as the paper describes.
	if len(opAT) != 1 {
		t.Fatalf("transformed del = %v, want single op", opAT)
	}
	if d, ok := opAT[0].(SeqDelete); !ok || d.Pos != 3 {
		t.Fatalf("transformed del = %v, want del(3)", opAT[0])
	}
}

func TestApplySeqBounds(t *testing.T) {
	cases := []Op{
		SeqInsert{Pos: -1, Elems: list(1)},
		SeqInsert{Pos: 4, Elems: list(1)},
		SeqDelete{Pos: 2, N: 2},
		SeqDelete{Pos: -1, N: 1},
		SeqDelete{Pos: 0, N: -1},
		SeqSet{Pos: 3, Elem: 9},
		SeqSet{Pos: -1, Elem: 9},
	}
	base := list(1, 2, 3)
	for _, op := range cases {
		if _, err := ApplySeq(base, op); err == nil {
			t.Errorf("apply %v on len 3: want error, got none", op)
		}
	}
	if _, err := ApplySeq(base, CounterAdd{Delta: 1}); err == nil {
		t.Errorf("applying a counter op to a sequence should fail")
	}
}

func TestApplySeqDoesNotAliasInput(t *testing.T) {
	base := list(1, 2, 3)
	out, err := ApplySeq(base, SeqSet{Pos: 0, Elem: 99})
	if err != nil {
		t.Fatal(err)
	}
	if base[0] != 1 {
		t.Fatalf("ApplySeq mutated its input: %v", base)
	}
	if out[0] != 99 {
		t.Fatalf("ApplySeq result = %v", out)
	}
}

func TestDeleteSplitByInsert(t *testing.T) {
	// Deleting [B,C,D] while someone inserts X between C and D must keep X.
	base := list("A", "B", "C", "D", "E")
	delOp := SeqDelete{Pos: 1, N: 3}
	insOp := SeqInsert{Pos: 3, Elems: list("X")}

	delT, insT := TransformPair(Op(delOp), Op(insOp))
	left := mustApplySeq(t, mustApplySeq(t, base, delOp), insT...)
	right := mustApplySeq(t, mustApplySeq(t, base, insOp), delT...)

	want := list("A", "X", "E")
	if !reflect.DeepEqual(left, want) || !reflect.DeepEqual(right, want) {
		t.Fatalf("left=%v right=%v want %v", left, right, want)
	}
	if len(delT) != 2 {
		t.Fatalf("delete crossing an insert should split in two, got %v", delT)
	}
}

func TestDeleteDeleteOverlap(t *testing.T) {
	base := list("A", "B", "C", "D", "E")
	a := SeqDelete{Pos: 1, N: 2} // deletes B,C
	b := SeqDelete{Pos: 2, N: 2} // deletes C,D

	aT, bT := TransformPair(Op(a), Op(b))
	left := mustApplySeq(t, mustApplySeq(t, base, a), bT...)
	right := mustApplySeq(t, mustApplySeq(t, base, b), aT...)
	want := list("A", "E")
	if !reflect.DeepEqual(left, want) || !reflect.DeepEqual(right, want) {
		t.Fatalf("left=%v right=%v want %v", left, right, want)
	}
}

func TestDeleteAbsorbedByIdenticalDelete(t *testing.T) {
	a := SeqDelete{Pos: 2, N: 1}
	b := SeqDelete{Pos: 2, N: 1}
	aT := a.Transform(b, true)
	if len(aT) != 0 {
		t.Fatalf("identical concurrent delete should be absorbed, got %v", aT)
	}
}

func TestInsertTieBreaking(t *testing.T) {
	base := list("x")
	a := SeqInsert{Pos: 0, Elems: list("a")}
	b := SeqInsert{Pos: 0, Elems: list("b")}
	aT, bT := TransformPair(Op(a), Op(b))
	left := mustApplySeq(t, mustApplySeq(t, base, a), bT...)
	right := mustApplySeq(t, mustApplySeq(t, base, b), aT...)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("tie-broken inserts diverged: left=%v right=%v", left, right)
	}
	// Priority side (b) must end up first.
	if !reflect.DeepEqual(left, list("b", "a", "x")) {
		t.Fatalf("priority insert should come first, got %v", left)
	}
}

func TestSetSetConflict(t *testing.T) {
	base := list("v")
	a := SeqSet{Pos: 0, Elem: "child"}
	b := SeqSet{Pos: 0, Elem: "parent"}
	aT, bT := TransformPair(Op(a), Op(b))
	left := mustApplySeq(t, mustApplySeq(t, base, a), bT...)
	right := mustApplySeq(t, mustApplySeq(t, base, b), aT...)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("set/set diverged: left=%v right=%v", left, right)
	}
	if left[0] != "parent" {
		t.Fatalf("priority write should win, got %v", left[0])
	}
}

// randomSeqOp generates a valid random sequence op against a state of
// length n. It may return nil when no op is possible (n == 0 allows only
// inserts, which are always possible, so nil never actually happens).
func randomSeqOp(r *rand.Rand, n int) Op {
	if n == 0 {
		return SeqInsert{Pos: 0, Elems: list(r.Intn(100))}
	}
	switch r.Intn(3) {
	case 0:
		k := 1 + r.Intn(3)
		elems := make([]any, k)
		for i := range elems {
			elems[i] = r.Intn(100)
		}
		return SeqInsert{Pos: r.Intn(n + 1), Elems: elems}
	case 1:
		pos := r.Intn(n)
		return SeqDelete{Pos: pos, N: 1 + r.Intn(n-pos)}
	default:
		return SeqSet{Pos: r.Intn(n), Elem: r.Intn(100)}
	}
}

func randomState(r *rand.Rand) []any {
	n := r.Intn(9)
	s := make([]any, n)
	for i := range s {
		s[i] = r.Intn(100)
	}
	return s
}

// TestTP1SeqPair is the convergence property TP1 for single concurrent
// sequence operations: apply(apply(S,a), b') == apply(apply(S,b), a').
func TestTP1SeqPair(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		a := randomSeqOp(r, len(s))
		b := randomSeqOp(r, len(s))
		aT, bT := TransformPair(a, b)

		left, err := applyAll(s, append([]Op{a}, bT...))
		if err != nil {
			t.Logf("seed %d: left apply failed: %v (a=%v b=%v aT=%v bT=%v)", seed, err, a, b, aT, bT)
			return false
		}
		right, err := applyAll(s, append([]Op{b}, aT...))
		if err != nil {
			t.Logf("seed %d: right apply failed: %v (a=%v b=%v aT=%v bT=%v)", seed, err, a, b, aT, bT)
			return false
		}
		if !reflect.DeepEqual(left, right) {
			t.Logf("seed %d: S=%v a=%v b=%v -> left=%v right=%v", seed, s, a, b, left, right)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTP1SeqSequences extends TP1 to whole op sequences via TransformSeqs,
// which is exactly the shape of a Spawn & Merge merge step.
func TestTP1SeqSequences(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)

		genSeq := func() []Op {
			cur := append([]any(nil), s...)
			k := r.Intn(5)
			ops := make([]Op, 0, k)
			for i := 0; i < k; i++ {
				op := randomSeqOp(r, len(cur))
				next, err := ApplySeq(cur, op)
				if err != nil {
					return ops
				}
				cur = next
				ops = append(ops, op)
			}
			return ops
		}
		a := genSeq()
		b := genSeq()
		aT, bT := TransformSeqs(a, b)

		left, err := applyAll(s, append(append([]Op{}, a...), bT...))
		if err != nil {
			t.Logf("seed %d: left apply failed: %v", seed, err)
			return false
		}
		right, err := applyAll(s, append(append([]Op{}, b...), aT...))
		if err != nil {
			t.Logf("seed %d: right apply failed: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(left, right) {
			t.Logf("seed %d: S=%v a=%v b=%v -> left=%v right=%v", seed, s, a, b, left, right)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func applyAll(s []any, ops []Op) ([]any, error) {
	cur := append([]any(nil), s...)
	var err error
	for _, op := range ops {
		cur, err = ApplySeq(cur, op)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func TestOpStrings(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{SeqInsert{Pos: 0, Elems: list("d")}, "ins(0,d)"},
		{SeqDelete{Pos: 2, N: 1}, "del(2)"},
		{SeqDelete{Pos: 2, N: 3}, "del(2,n=3)"},
		{SeqSet{Pos: 1, Elem: 5}, "set(1,5)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindSeqInsert.String() != "seq.ins" {
		t.Errorf("KindSeqInsert = %q", KindSeqInsert.String())
	}
	if Kind(200).String() == "" {
		t.Errorf("unknown kind should still render")
	}
}

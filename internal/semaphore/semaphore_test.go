package semaphore

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mergeable"
	"repro/internal/task"

	"repro/internal/testutil"
)

// TestMutualExclusion is the heart of the equivalence claim: a semaphore
// of count 1 built from Spawn/Merge/Sync must provide real mutual
// exclusion between genuinely parallel workers. The shared atomic is
// test-side instrumentation observing the workers' actual concurrency.
func TestMutualExclusion(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		var inside, maxInside atomic.Int64
		counter := mergeable.NewCounter(0)

		worker := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			for i := 0; i < 5; i++ {
				if err := sems.Acquire(0); err != nil {
					return err
				}
				n := inside.Add(1)
				for {
					cur := maxInside.Load()
					if n <= cur || maxInside.CompareAndSwap(cur, n) {
						break
					}
				}
				data[0].(*mergeable.Counter).Inc()
				time.Sleep(time.Millisecond) // widen the window
				inside.Add(-1)
				if err := sems.Release(0); err != nil {
					return err
				}
			}
			return nil
		}

		workers := []Worker{worker, worker, worker, worker}
		if err := Run([]int64{1}, workers, counter); err != nil {
			t.Fatal(err)
		}
		if got := maxInside.Load(); got != 1 {
			t.Fatalf("mutual exclusion violated: %d workers inside simultaneously", got)
		}
		if counter.Value() != 20 {
			t.Fatalf("counter = %d, want 20", counter.Value())
		}
	})
}

// TestCountingSemaphore checks a count-3 semaphore admits at most three
// holders.
func TestCountingSemaphore(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		var inside, maxInside atomic.Int64
		worker := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			for i := 0; i < 3; i++ {
				if err := sems.Acquire(0); err != nil {
					return err
				}
				n := inside.Add(1)
				for {
					cur := maxInside.Load()
					if n <= cur || maxInside.CompareAndSwap(cur, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inside.Add(-1)
				if err := sems.Release(0); err != nil {
					return err
				}
			}
			return nil
		}
		workers := make([]Worker, 6)
		for i := range workers {
			workers[i] = worker
		}
		if err := Run([]int64{3}, workers); err != nil {
			t.Fatal(err)
		}
		if got := maxInside.Load(); got > 3 {
			t.Fatalf("semaphore admitted %d concurrent holders, count is 3", got)
		}
	})
}

// TestMutexWrapper covers the derived Mutex primitive.
func TestMutexWrapper(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		counter := mergeable.NewCounter(0)
		worker := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			mu := sems.Mutex(0)
			if err := mu.Lock(); err != nil {
				return err
			}
			data[0].(*mergeable.Counter).Inc()
			return mu.Unlock()
		}
		if err := Run([]int64{1}, []Worker{worker, worker, worker}, counter); err != nil {
			t.Fatal(err)
		}
		if counter.Value() != 3 {
			t.Fatalf("counter = %d, want 3", counter.Value())
		}
	})
}

// TestDeadlockDetected builds the canonical two-lock deadlock: worker A
// holds semaphore 0 and wants 1; worker B holds 1 and wants 0. In a real
// semaphore system the threads deadlock; per Section IV.B the Spawn &
// Merge simulation degenerates to MergeAnyFromSet over an empty set — a
// livelock we detect and report as ErrAllBlocked.
func TestDeadlockDetected(t *testing.T) {
	testutil.WithTimeout(t, 60*time.Second, func() {
		var aHolds0, bHolds1 atomic.Bool
		workerA := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			if err := sems.Acquire(0); err != nil {
				return err
			}
			aHolds0.Store(true)
			for !bHolds1.Load() {
				time.Sleep(time.Millisecond)
			}
			return sems.Acquire(1) // blocks forever
		}
		workerB := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			if err := sems.Acquire(1); err != nil {
				return err
			}
			bHolds1.Store(true)
			for !aHolds0.Load() {
				time.Sleep(time.Millisecond)
			}
			return sems.Acquire(0) // blocks forever
		}
		err := Run([]int64{1, 1}, []Worker{workerA, workerB})
		if !errors.Is(err, ErrAllBlocked) {
			t.Fatalf("err = %v, want ErrAllBlocked", err)
		}
	})
}

// TestProducerConsumer implements the classic bounded buffer with three
// semaphores (slots, items, mutex) — the standard semaphore exercise,
// executed under the Spawn & Merge simulation with a mergeable queue as
// the buffer.
func TestProducerConsumer(t *testing.T) {
	testutil.WithTimeout(t, 120*time.Second, func() {
		const items = 8
		buf := mergeable.NewQueue[int]()
		sink := mergeable.NewList[int]()

		producer := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			q := data[0].(*mergeable.Queue[int])
			for i := 0; i < items; i++ {
				if err := sems.Acquire(0); err != nil { // slots
					return err
				}
				if err := sems.Acquire(2); err != nil { // mutex
					return err
				}
				q.Push(i)
				if err := sems.Release(2); err != nil {
					return err
				}
				if err := sems.Release(1); err != nil { // items
					return err
				}
			}
			return nil
		}
		consumer := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			q := data[0].(*mergeable.Queue[int])
			out := data[1].(*mergeable.List[int])
			for i := 0; i < items; i++ {
				if err := sems.Acquire(1); err != nil { // items
					return err
				}
				if err := sems.Acquire(2); err != nil { // mutex
					return err
				}
				v, ok := q.PopFront()
				if !ok {
					t.Error("consumer found empty buffer despite items semaphore")
				}
				out.Append(v)
				if err := sems.Release(2); err != nil {
					return err
				}
				if err := sems.Release(0); err != nil { // slots
					return err
				}
			}
			return nil
		}

		// counts: slots=3, items=0, mutex=1
		if err := Run([]int64{3, 0, 1}, []Worker{producer, consumer}, buf, sink); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != 0 {
			t.Fatalf("buffer should be drained, has %v", buf.Values())
		}
		if sink.Len() != items {
			t.Fatalf("consumed %d items, want %d: %v", sink.Len(), items, sink.Values())
		}
		// FIFO buffer + single producer/consumer => order preserved.
		for i, v := range sink.Values() {
			if v != i {
				t.Fatalf("out of order at %d: %v", i, sink.Values())
			}
		}
	})
}

// TestAcquireBadIndex covers argument validation.
func TestAcquireBadIndex(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		worker := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			if err := sems.Acquire(5); err == nil {
				t.Error("acquire of missing semaphore should fail")
			}
			if err := sems.Release(-1); err == nil {
				t.Error("release of missing semaphore should fail")
			}
			return nil
		}
		if err := Run([]int64{1}, []Worker{worker}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWorkerErrorPropagates ensures a failing worker surfaces in Run's
// result and does not wedge the coordinator.
func TestWorkerErrorPropagates(t *testing.T) {
	testutil.WithTimeout(t, 30*time.Second, func() {
		boom := errors.New("boom")
		bad := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			if err := sems.Acquire(0); err != nil {
				return err
			}
			return boom // dies holding the semaphore
		}
		good := func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error {
			return nil
		}
		err := Run([]int64{1}, []Worker{bad, good})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	})
}

// Package semaphore is the executable version of Section IV.A of the
// paper: a constructive proof that Spawn & Merge has the same expressive
// power for synchronization as Dijkstra semaphores.
//
// A semaphore is modeled as a mergeable list of integers L. L[0] is the
// semaphore's value; every following entry is the ID of a task waiting at
// the semaphore (positive = acquire request, negative = release
// announcement). To acquire, a worker appends its ID to L and calls Sync()
// twice: the first Sync delivers the request to the coordinating parent,
// the second blocks until the parent grants access — the parent simply
// stops merging with ungranted waiters (removes them from the set S it
// passes to MergeAnyFromSet), which leaves them blocked in their second
// Sync. To release, a worker appends its negative ID and syncs once.
//
// The parent task loops on MergeAnyFromSet(S) — the explicitly
// non-deterministic merge — because semaphore systems are themselves
// non-deterministic. When every worker is blocked, S is empty and
// MergeAnyFromSet returns immediately instead of blocking (Section IV.B):
// the simulated system livelocks where the semaphore system would
// deadlock. This package surfaces that state as ErrAllBlocked rather than
// spinning forever, which is strictly friendlier than the paper's infinite
// loop and makes the deadlock-detection tests possible.
package semaphore

import (
	"errors"
	"fmt"

	"repro/internal/mergeable"
	"repro/internal/task"
)

// ErrAllBlocked reports that every live worker is blocked waiting on a
// semaphore — the Spawn & Merge image of a deadlocked semaphore program.
// (The paper's construction would loop forever on MergeAnyFromSet(∅); we
// detect and report instead.)
var ErrAllBlocked = errors.New("semaphore: all workers blocked (simulated semaphore system is deadlocked)")

// Worker is the body of one simulated thread. It may acquire and release
// the pool's semaphores through sems and operate on its copies of the user
// data structures.
type Worker func(ctx *task.Ctx, sems *Sems, data []mergeable.Mergeable) error

// Sems is a worker's handle to the semaphore pool. All methods must be
// called from the worker's own task goroutine.
type Sems struct {
	ctx   *task.Ctx
	id    int64
	lists []*mergeable.List[int64]
}

// Acquire blocks until semaphore k is acquired (Dijkstra's P operation).
// It returns a non-nil error when the worker is aborted or the runtime
// rejects the sync.
func (s *Sems) Acquire(k int) error {
	if k < 0 || k >= len(s.lists) {
		return fmt.Errorf("semaphore: no semaphore %d", k)
	}
	s.lists[k].Append(s.id)
	// First Sync wakes the parent and delivers the request.
	if err := s.ctx.Sync(); err != nil {
		return err
	}
	// Second Sync blocks until the parent merges with us again, which it
	// only does once it granted us the semaphore.
	return s.ctx.Sync()
}

// Release frees semaphore k (Dijkstra's V operation).
func (s *Sems) Release(k int) error {
	if k < 0 || k >= len(s.lists) {
		return fmt.Errorf("semaphore: no semaphore %d", k)
	}
	s.lists[k].Append(-s.id)
	return s.ctx.Sync()
}

// Mutex presents semaphore k with a lock/unlock interface — the standard
// derived primitive.
type Mutex struct {
	sems *Sems
	k    int
}

// Mutex returns a mutex view of semaphore k (which should have been
// created with count 1).
func (s *Sems) Mutex(k int) *Mutex { return &Mutex{sems: s, k: k} }

// Lock acquires the underlying semaphore.
func (m *Mutex) Lock() error { return m.sems.Acquire(m.k) }

// Unlock releases the underlying semaphore.
func (m *Mutex) Unlock() error { return m.sems.Release(m.k) }

// Run simulates a semaphore-based multi-threaded program: one Spawn &
// Merge worker task per entry of workers, sharing semaphores initialized
// with the given counts and copies of the user data structures. Run
// returns when every worker has completed and been merged, or
// ErrAllBlocked when the simulated program deadlocks. Worker errors are
// aggregated into the returned error.
func Run(counts []int64, workers []Worker, userData ...mergeable.Mergeable) error {
	nsems := len(counts)
	lists := make([]*mergeable.List[int64], nsems)
	rootData := make([]mergeable.Mergeable, 0, nsems+len(userData))
	for i, c := range counts {
		lists[i] = mergeable.NewList(c) // L[0] = semaphore value
		rootData = append(rootData, lists[i])
	}
	rootData = append(rootData, userData...)

	return task.Run(func(ctx *task.Ctx, data []mergeable.Mergeable) error {
		coord := &coordinator{
			nsems:   nsems,
			lists:   lists,
			byID:    make(map[int64]*task.Task, len(workers)),
			inSet:   make(map[*task.Task]bool, len(workers)),
			blocked: make(map[int64]bool),
		}
		for i, w := range workers {
			w := w
			id := int64(i + 1)
			h := ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				sems := &Sems{ctx: ctx, id: id}
				for k := 0; k < nsems; k++ {
					sems.lists = append(sems.lists, d[k].(*mergeable.List[int64]))
				}
				return w(ctx, sems, d[nsems:])
			}, rootData...)
			coord.byID[id] = h
			coord.inSet[h] = true
			coord.live++
		}
		return coord.loop(ctx)
	}, rootData...)
}

// coordinator is the parent-side bookkeeping of Section IV.A.
type coordinator struct {
	nsems   int
	lists   []*mergeable.List[int64]
	byID    map[int64]*task.Task
	inSet   map[*task.Task]bool // S: children the parent is willing to merge
	blocked map[int64]bool      // worker IDs currently waiting at a semaphore
	live    int
	errs    []error
}

func (c *coordinator) loop(ctx *task.Ctx) error {
	for c.live > 0 {
		set := make([]*task.Task, 0, len(c.inSet))
		for h, ok := range c.inSet {
			if ok {
				set = append(set, h)
			}
		}
		if len(set) == 0 {
			// Every worker is blocked: MergeAnyFromSet(∅) would return
			// immediately forever — the livelocked image of a deadlock.
			c.errs = append(c.errs, ErrAllBlocked)
			break
		}
		h, err := ctx.MergeAnyFromSet(set)
		if errors.Is(err, task.ErrNothingToMerge) {
			continue
		}
		if err != nil {
			c.errs = append(c.errs, err)
		}
		if h != nil && h.Merged() {
			c.live--
			delete(c.inSet, h)
		}
		c.process()
	}
	// Abort whatever is still blocked so the implicit MergeAll at the end
	// of the root task can unwind it (its changes are discarded; it is
	// deadlocked in the simulated program anyway).
	for _, h := range c.byID {
		if !h.Merged() {
			h.Abort()
		}
	}
	return errors.Join(c.errs...)
}

// process applies the paper's bookkeeping after every merge: handle
// release announcements (negative IDs), then grant semaphores to waiters
// in FIFO order, then recompute the set S = live workers not blocked at
// any semaphore.
func (c *coordinator) process() {
	for _, l := range c.lists {
		// Releases: remove negative IDs, incrementing the value for each.
		i := 1
		for i < l.Len() {
			if l.Get(i) < 0 {
				l.Delete(i)
				l.Set(0, l.Get(0)+1)
			} else {
				i++
			}
		}
		// Grants: while capacity remains, pop the longest-waiting ID.
		for l.Get(0) > 0 && l.Len() > 1 {
			id := l.Get(1)
			l.Delete(1)
			l.Set(0, l.Get(0)-1)
			delete(c.blocked, id)
		}
	}
	// Recompute blocked: every ID still listed after position 0 waits.
	stillWaiting := make(map[int64]bool)
	for _, l := range c.lists {
		for i := 1; i < l.Len(); i++ {
			if id := l.Get(i); id > 0 {
				stillWaiting[id] = true
			}
		}
	}
	c.blocked = stillWaiting
	for id, h := range c.byID {
		if h.Merged() {
			continue
		}
		c.inSet[h] = !stillWaiting[id]
		if !c.inSet[h] {
			delete(c.inSet, h)
		}
	}
}

// Package cow provides a persistent (copy-on-write) vector, the
// optimization substrate the paper's conclusion announces as future work:
// "we will optimize our Spawn and Merge framework using techniques like
// copy-on-write ... to decrease the overhead".
//
// A Vector is an immutable 32-way branching trie with a tail buffer, the
// classic persistent-vector design. Clone is O(1) — it shares structure —
// so a task copy of a COW-backed structure costs almost nothing at spawn
// time; mutated paths are copied lazily, bounding each write to O(log32 n)
// node copies. The ablation benchmark BenchmarkCloneDeepVsCOW quantifies
// the spawn-overhead reduction against the deep-copy slices the default
// structures use.
package cow

import (
	"fmt"
	"sync/atomic"
)

const (
	bits  = 5
	width = 1 << bits // 32
	mask  = width - 1
)

// Tail-chunk accounting. Every tail buffer the package allocates counts
// as one chunk; an explicit release (ReleaseOwned, Compact, or the owned
// mutators abandoning an exclusively owned backing) counts the chunk
// reclaimed and zeroes its slots, so element references return to the
// allocator immediately instead of riding along unreachably until the
// whole trie dies. allocated - reclaimed bounds the chunks whose slots
// may still pin memory; leak tests assert it stays flat across
// long-lived single-owner workloads.
var chunkAllocs, chunkReclaims atomic.Int64

// ChunkAccounting returns the number of tail chunks allocated and
// explicitly released since process start.
func ChunkAccounting() (allocated, reclaimed int64) {
	return chunkAllocs.Load(), chunkReclaims.Load()
}

// releaseChunk returns one exclusively owned tail chunk: every slot up to
// capacity is zeroed (dropping the element references a clipped length
// would otherwise keep live) and the reclaim is accounted. Callers must
// hold the only reference to the backing array.
func releaseChunk[T any](s []T) {
	if cap(s) == 0 {
		return
	}
	var zero T
	s = s[:cap(s)]
	for i := range s {
		s[i] = zero
	}
	chunkReclaims.Add(1)
}

// node is a trie node: either internal (children) or leaf (values).
type node[T any] struct {
	children [width]*node[T]
	values   []T
	leaf     bool
}

func newLeaf[T any](vals []T) *node[T] {
	n := &node[T]{leaf: true}
	n.values = append(n.values, vals...)
	return n
}

// Vector is an immutable sequence. All methods returning a Vector leave
// the receiver untouched; the zero value is an empty vector ready to use.
type Vector[T any] struct {
	count int
	shift uint
	root  *node[T]
	tail  []T
	// sharedTail records that another live Vector value shares this tail's
	// backing array *within its length* (set by MarkShared when a sealed
	// view is handed out). It blocks SetOwned's in-place write — a write
	// inside the shared length would be visible through the other view —
	// while leaving AppendOwned's beyond-length writes alone, which sealed
	// (length-clipped) views can never observe. Any operation that installs
	// a freshly copied tail clears it.
	sharedTail bool
}

// New returns a vector holding vals.
func New[T any](vals ...T) Vector[T] {
	return FromSlice(vals)
}

// FromSlice builds a vector from vals in O(n): full leaves are packed
// directly from the slice and the trie is assembled bottom-up, instead of
// paying Append's per-element tail copy (which makes element-wise
// construction O(n·width)). The result is indistinguishable from the same
// sequence of Appends. This is the bulk-load path the zero-copy spawn
// pipeline uses whenever a structure rebuilds its backing vector.
func FromSlice[T any](vals []T) Vector[T] {
	count := len(vals)
	if count == 0 {
		return Vector[T]{shift: bits}
	}
	tailOff := 0
	if count >= width {
		tailOff = ((count - 1) >> bits) << bits
	}
	// Pad small tails: structures rebuilt via FromSlice almost always keep
	// appending (or overwriting) in owned mode right after, and the spare
	// capacity turns their next growth into an in-place write.
	tailCap := count - tailOff
	if tailCap < 8 {
		tailCap = 8
	}
	chunkAllocs.Add(1)
	tail := append(make([]T, 0, tailCap), vals[tailOff:]...)
	if tailOff == 0 {
		return Vector[T]{count: count, shift: bits, tail: tail}
	}
	cur := make([]*node[T], 0, (tailOff+width-1)/width)
	for i := 0; i < tailOff; i += width {
		cur = append(cur, newLeaf(vals[i:i+width]))
	}
	// Group nodes 32 at a time until one internal root remains. The root is
	// always internal — Get descends shift/bits levels before reading leaf
	// values — so even a single leaf gets one grouping round.
	shift := uint(0)
	for len(cur) > 1 || shift == 0 {
		next := make([]*node[T], 0, (len(cur)+width-1)/width)
		for i := 0; i < len(cur); i += width {
			end := i + width
			if end > len(cur) {
				end = len(cur)
			}
			n := &node[T]{}
			copy(n.children[:], cur[i:end])
			next = append(next, n)
		}
		cur = next
		shift += bits
	}
	return Vector[T]{count: count, shift: shift, root: cur[0], tail: tail}
}

// Len returns the number of elements.
func (v Vector[T]) Len() int { return v.count }

// tailOffset is the index of the first element stored in the tail buffer.
func (v Vector[T]) tailOffset() int {
	if v.count < width {
		return 0
	}
	return ((v.count - 1) >> bits) << bits
}

// Get returns the element at index i. It panics when i is out of range,
// matching slice semantics.
func (v Vector[T]) Get(i int) T {
	if i < 0 || i >= v.count {
		panic(fmt.Sprintf("cow: index %d out of range [0,%d)", i, v.count))
	}
	if i >= v.tailOffset() {
		return v.tail[i-v.tailOffset()]
	}
	n := v.root
	for level := v.shift; level > 0; level -= bits {
		n = n.children[(i>>level)&mask]
	}
	return n.values[i&mask]
}

// Append returns a vector with x added at the end.
func (v Vector[T]) Append(x T) Vector[T] {
	if v.count-v.tailOffset() < width {
		// Room in the tail: copy only the tail buffer.
		chunkAllocs.Add(1)
		newTail := make([]T, len(v.tail), len(v.tail)+1)
		copy(newTail, v.tail)
		newTail = append(newTail, x)
		return Vector[T]{count: v.count + 1, shift: v.shift, root: v.root, tail: newTail}
	}
	// Tail full: push it into the trie.
	tailNode := newLeaf(v.tail)
	newShift := v.shift
	var newRoot *node[T]
	switch {
	case v.root == nil:
		// First trie node: wrap the leaf so the trie depth matches shift.
		newRoot = newPath(v.shift, tailNode)
	case (v.count >> bits) > (1 << v.shift):
		// Root overflow: grow a level.
		newRoot = &node[T]{}
		newRoot.children[0] = v.root
		newRoot.children[1] = newPath(v.shift, tailNode)
		newShift += bits
	default:
		newRoot = pushTail(v.root, v.shift, v.count-1, tailNode)
	}
	chunkAllocs.Add(1)
	return Vector[T]{count: v.count + 1, shift: newShift, root: newRoot, tail: []T{x}}
}

// AppendOwned is Append for a caller that exclusively owns the receiver's
// tail buffer — no other live Vector value can observe it — and discards
// the receiver after the call. When the tail has spare capacity the element
// is written in place, making a run of owned appends amortize to one
// allocation instead of one per element. Exclusive ownership holds for the
// single-owner mutable façades in package mergeable: every operation that
// lets a second Vector value share a tail with spare capacity (CloneValue,
// AdoptFrom) re-establishes safety by sealing the tail first, after which
// the next owned append copies it. All other constructors (Append, Set,
// FromSlice, Pop) already produce sealed or freshly copied tails.
func (v Vector[T]) AppendOwned(x T) Vector[T] {
	n := len(v.tail)
	if n < width {
		if n < cap(v.tail) {
			v.tail = append(v.tail, x)
			v.count++
			return v
		}
		newCap := 2 * n
		if newCap < 8 {
			newCap = 8
		}
		if newCap > width {
			newCap = width
		}
		chunkAllocs.Add(1)
		nt := make([]T, n, newCap)
		copy(nt, v.tail)
		if !v.sharedTail {
			// The receiver's backing was exclusively owned (a sealed tail no
			// clone ever attached to); the owner is discarding it right now.
			releaseChunk(v.tail)
		}
		v.tail = append(nt, x)
		v.count++
		v.sharedTail = false // fresh backing, no other view can see it
		return v
	}
	return v.Append(x) // tail full: spill into the trie
}

// MarkShared records that a second view of the receiver's tail is about to
// be handed out (see Sealed); subsequent SetOwned calls copy the tail
// before writing inside its shared length. The single-owner façades call
// this on the parent side of a clone, keeping the parent's spare tail
// capacity — and therefore its in-place append run — intact.
func (v *Vector[T]) MarkShared() { v.sharedTail = true }

// SetOwned is Set for a caller that exclusively owns the receiver (same
// contract as AppendOwned): when the index lands in a tail that no sealed
// view shares and that carries spare capacity — the signature of owned
// growth, never of a freshly shared backing — the element is written in
// place. A run of owned overwrites then amortizes to at most one tail copy
// instead of one per write. Trie-resident indexes take the ordinary
// path-copying route, which never touches the tail.
func (v Vector[T]) SetOwned(i int, x T) Vector[T] {
	if i < 0 || i >= v.count {
		panic(fmt.Sprintf("cow: index %d out of range [0,%d)", i, v.count))
	}
	off := v.tailOffset()
	if i < off {
		v.root = setInTrie(v.root, v.shift, i, x)
		return v
	}
	if !v.sharedTail && cap(v.tail) > len(v.tail) {
		v.tail[i-off] = x
		return v
	}
	n := len(v.tail)
	newCap := 2 * n
	if newCap < 8 {
		newCap = 8
	}
	if newCap > width {
		newCap = width
	}
	chunkAllocs.Add(1)
	nt := make([]T, n, newCap)
	copy(nt, v.tail)
	nt[i-off] = x
	if !v.sharedTail {
		// Sealed tail with no reader attached: the copy above strands the
		// old chunk, so hand it back — without this, a seal/overwrite cycle
		// leaks one chunk per overwrite.
		releaseChunk(v.tail)
	}
	v.tail = nt
	v.sharedTail = false
	return v
}

// Sealed returns the vector with its tail capacity clipped to its length,
// so a later AppendOwned on either the receiver's copy or the result must
// copy the tail before writing. Callers handing out a second reference to
// a vector whose tail may carry spare capacity (clone, adopt) seal it
// first; sealing a vector with an exact-capacity tail is a no-op. The
// result carries the shared-tail mark: it observes the receiver's
// backing, so an owned mutator on the result must copy — never release —
// that chunk.
func (v Vector[T]) Sealed() Vector[T] {
	v.tail = v.tail[:len(v.tail):len(v.tail)]
	v.sharedTail = true
	return v
}

// SealTail seals the receiver in place. The no-spare-capacity check makes
// repeated sealing free: only the first seal after an owned append writes
// anything, which matters on the clone-per-spawn hot path where the same
// structure is cloned for many children in a row.
func (v *Vector[T]) SealTail() {
	if n := len(v.tail); cap(v.tail) > n {
		v.tail = v.tail[:n:n]
	}
}

func newPath[T any](level uint, n *node[T]) *node[T] {
	if level == 0 {
		return n
	}
	ret := &node[T]{}
	ret.children[0] = newPath(level-bits, n)
	return ret
}

func pushTail[T any](parent *node[T], level uint, lastIdx int, tailNode *node[T]) *node[T] {
	idx := (lastIdx >> level) & mask
	ret := &node[T]{children: parent.children}
	if level == bits {
		ret.children[idx] = tailNode
	} else {
		child := parent.children[idx]
		if child == nil {
			ret.children[idx] = newPath(level-bits, tailNode)
		} else {
			ret.children[idx] = pushTail(child, level-bits, lastIdx, tailNode)
		}
	}
	return ret
}

// Set returns a vector with index i replaced by x. It panics when i is
// out of range.
func (v Vector[T]) Set(i int, x T) Vector[T] {
	if i < 0 || i >= v.count {
		panic(fmt.Sprintf("cow: index %d out of range [0,%d)", i, v.count))
	}
	if i >= v.tailOffset() {
		chunkAllocs.Add(1)
		newTail := append([]T(nil), v.tail...)
		newTail[i-v.tailOffset()] = x
		return Vector[T]{count: v.count, shift: v.shift, root: v.root, tail: newTail}
	}
	// The tail is reused, so the shared-tail mark must ride along.
	return Vector[T]{count: v.count, shift: v.shift, root: setInTrie(v.root, v.shift, i, x), tail: v.tail, sharedTail: v.sharedTail}
}

func setInTrie[T any](n *node[T], level uint, i int, x T) *node[T] {
	if n.leaf {
		ret := newLeaf(n.values)
		ret.values[i&mask] = x
		return ret
	}
	ret := &node[T]{children: n.children}
	idx := (i >> level) & mask
	ret.children[idx] = setInTrie(n.children[idx], level-bits, i, x)
	return ret
}

// Pop returns a vector with the last element removed. It panics on an
// empty vector.
func (v Vector[T]) Pop() Vector[T] {
	if v.count == 0 {
		panic("cow: pop of empty vector")
	}
	if v.count == 1 {
		return Vector[T]{shift: bits}
	}
	if v.count-v.tailOffset() > 1 {
		// Clip capacity along with length: the dropped slot may still be
		// visible through another vector sharing this tail, so the result
		// must never let AppendOwned write it in place. The shared-tail
		// mark rides along — the clipped view is the same backing, and a
		// later owned mutator must not release (zero) it out from under a
		// clone.
		n := len(v.tail) - 1
		return Vector[T]{count: v.count - 1, shift: v.shift, root: v.root, tail: v.tail[:n:n], sharedTail: v.sharedTail}
	}
	// Tail exhausted: pull the previous leaf out of the trie as the new
	// tail. Keep the (now unused) rightmost path; it is unreachable via
	// indices and harmless, and avoiding the extra surgery keeps Pop
	// simple — Get/Set/Append never see it.
	newCount := v.count - 1
	lastIdx := newCount - 1
	n := v.root
	for level := v.shift; level > 0; level -= bits {
		n = n.children[(lastIdx>>level)&mask]
	}
	chunkAllocs.Add(1)
	return Vector[T]{count: newCount, shift: v.shift, root: v.root, tail: append([]T(nil), n.values...)}
}

// ReleaseOwned returns the receiver's tail chunk to the allocator and
// empties the vector. It is for a caller that exclusively owns the
// receiver and is abandoning it — the façade idiom when a structure
// rebuilds its backing vector and drops the old one. A tail some clone
// may still observe (MarkShared was called) is left alone; the empty
// result is safe to keep using either way.
func (v *Vector[T]) ReleaseOwned() {
	if !v.sharedTail {
		releaseChunk(v.tail)
	}
	*v = Vector[T]{shift: bits}
}

// Replace installs next into *v, releasing the previous vector's
// exclusively owned tail chunk — shorthand for the rebuild-and-release
// idiom at every façade site that swaps in a FromSlice result.
func Replace[T any](v *Vector[T], next Vector[T]) {
	old := *v
	*v = next
	old.ReleaseOwned()
}

// Compact returns a vector with the same contents and no stale storage:
// an exact-capacity tail, no unreachable rightmost trie path left behind
// by Pop, and no clipped-away slots pinning elements. The receiver's
// exclusively owned tail chunk is released. Long-lived single-owner
// structures run it as their chunk-reclaim pass after bursts of pops or
// overwrites.
func (v Vector[T]) Compact() Vector[T] {
	out := FromSlice(v.Slice())
	out.SealTail()
	v.ReleaseOwned()
	return out
}

// Slice returns the vector's contents as a fresh slice. It walks the trie
// leaves directly — O(n) — instead of paying Get's O(log n) descent per
// element. The limit guards against the unreachable rightmost path Pop can
// leave behind: leaves are walked left to right, so cutting at tailOffset
// stops exactly before any stale leaf.
func (v Vector[T]) Slice() []T {
	out := make([]T, 0, v.count)
	if v.root != nil {
		out = appendTrie(out, v.root, v.tailOffset())
	}
	return append(out, v.tail...)
}

func appendTrie[T any](dst []T, n *node[T], limit int) []T {
	if n == nil || len(dst) >= limit {
		return dst
	}
	if n.leaf {
		take := limit - len(dst)
		if take > len(n.values) {
			take = len(n.values)
		}
		return append(dst, n.values[:take]...)
	}
	for _, c := range n.children {
		if c == nil || len(dst) >= limit {
			break
		}
		dst = appendTrie(dst, c, limit)
	}
	return dst
}

package cow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmptyVector(t *testing.T) {
	var v Vector[int]
	if v.Len() != 0 {
		t.Fatalf("len = %d", v.Len())
	}
	v2 := New[int]()
	if v2.Len() != 0 || len(v2.Slice()) != 0 {
		t.Fatalf("New() not empty")
	}
}

func TestAppendGet(t *testing.T) {
	v := New[int]()
	const n = 5000 // crosses several trie levels
	for i := 0; i < n; i++ {
		v = v.Append(i)
	}
	if v.Len() != n {
		t.Fatalf("len = %d", v.Len())
	}
	for i := 0; i < n; i++ {
		if got := v.Get(i); got != i {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
}

func TestPersistence(t *testing.T) {
	v1 := New(1, 2, 3)
	v2 := v1.Append(4)
	v3 := v2.Set(0, 100)
	if !reflect.DeepEqual(v1.Slice(), []int{1, 2, 3}) {
		t.Fatalf("v1 mutated: %v", v1.Slice())
	}
	if !reflect.DeepEqual(v2.Slice(), []int{1, 2, 3, 4}) {
		t.Fatalf("v2 = %v", v2.Slice())
	}
	if !reflect.DeepEqual(v3.Slice(), []int{100, 2, 3, 4}) {
		t.Fatalf("v3 = %v", v3.Slice())
	}
}

func TestSetDeepInTrie(t *testing.T) {
	v := New[int]()
	for i := 0; i < 2000; i++ {
		v = v.Append(i)
	}
	w := v.Set(777, -1)
	if v.Get(777) != 777 {
		t.Fatalf("original changed")
	}
	if w.Get(777) != -1 {
		t.Fatalf("set missed: %d", w.Get(777))
	}
	if w.Get(776) != 776 || w.Get(778) != 778 {
		t.Fatalf("neighbors disturbed")
	}
}

func TestPop(t *testing.T) {
	v := New[int]()
	const n = 100
	for i := 0; i < n; i++ {
		v = v.Append(i)
	}
	for i := n - 1; i >= 0; i-- {
		if got := v.Get(i); got != i {
			t.Fatalf("Get(%d) = %d before pop", i, got)
		}
		v = v.Pop()
		if v.Len() != i {
			t.Fatalf("len = %d after popping to %d", v.Len(), i)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"get-empty": func() { New[int]().Get(0) },
		"get-neg":   func() { New(1).Get(-1) },
		"set-oob":   func() { New(1).Set(5, 9) },
		"pop-empty": func() { New[int]().Pop() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

// TestModelEquivalence drives a random op sequence against the vector and
// a plain slice model and demands identical observable behavior —
// including persistence of earlier versions.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := New[int]()
		model := []int{}
		type snapshot struct {
			v     Vector[int]
			model []int
		}
		var snaps []snapshot
		for step := 0; step < 300; step++ {
			switch op := r.Intn(10); {
			case op < 5 || len(model) == 0: // append
				x := r.Intn(1000)
				v = v.Append(x)
				model = append(append([]int(nil), model...), x)
			case op < 7: // set
				i := r.Intn(len(model))
				x := r.Intn(1000)
				v = v.Set(i, x)
				model = append([]int(nil), model...)
				model[i] = x
			case op < 9: // pop
				v = v.Pop()
				model = model[:len(model)-1]
			default: // snapshot
				snaps = append(snaps, snapshot{v, model})
			}
			if v.Len() != len(model) {
				t.Logf("seed %d step %d: len %d != %d", seed, step, v.Len(), len(model))
				return false
			}
			i := 0
			if len(model) > 0 {
				i = r.Intn(len(model))
				if v.Get(i) != model[i] {
					t.Logf("seed %d step %d: Get(%d) = %d != %d", seed, step, i, v.Get(i), model[i])
					return false
				}
			}
		}
		for k, s := range snaps {
			if !reflect.DeepEqual(s.v.Slice(), s.model) {
				t.Logf("seed %d: snapshot %d diverged: %v != %v", seed, k, s.v.Slice(), s.model)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeGrowthAcrossLevels(t *testing.T) {
	v := New[int]()
	const n = 40000 // > 32*32*32 forces three levels
	for i := 0; i < n; i++ {
		v = v.Append(i)
	}
	for _, i := range []int{0, 31, 32, 1023, 1024, 32767, 32768, n - 1} {
		if v.Get(i) != i {
			t.Fatalf("Get(%d) = %d", i, v.Get(i))
		}
	}
}

// TestFromSliceMatchesAppend pins the bulk builder against element-wise
// construction across leaf, tail and level boundaries, including continued
// mutation of the bulk-built vector.
func TestFromSliceMatchesAppend(t *testing.T) {
	sizes := []int{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 1025, 1056, 1057, 2100, 33000}
	for _, n := range sizes {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i * 3
		}
		v := FromSlice(vals)
		if v.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, v.Len())
		}
		if got := v.Slice(); !reflect.DeepEqual(got, append(make([]int, 0, n), vals...)) {
			t.Fatalf("n=%d: Slice diverged", n)
		}
		for _, i := range []int{0, n / 2, n - 1} {
			if n == 0 {
				break
			}
			if v.Get(i) != vals[i] {
				t.Fatalf("n=%d: Get(%d) = %d, want %d", n, i, v.Get(i), vals[i])
			}
		}
		// The bulk-built vector must keep behaving under every mutation.
		v2 := v.Append(-1)
		if v2.Get(n) != -1 || v2.Len() != n+1 {
			t.Fatalf("n=%d: Append on bulk-built vector broke", n)
		}
		if n > 0 {
			if got := v.Set(n/2, -7).Get(n / 2); got != -7 {
				t.Fatalf("n=%d: Set on bulk-built vector got %d", n, got)
			}
			if got := v.Pop().Len(); got != n-1 {
				t.Fatalf("n=%d: Pop on bulk-built vector len %d", n, got)
			}
			// The original is untouched (persistence).
			if v.Get(n/2) != vals[n/2] || v.Len() != n {
				t.Fatalf("n=%d: bulk-built vector mutated in place", n)
			}
		}
	}
}

// TestAppendOwnedSealing exercises the exclusive-ownership contract:
// AppendOwned may write the tail in place only while no other vector can
// observe it, and Sealed/Pop re-establish copy-on-append at every point a
// second reference appears.
func TestAppendOwnedSealing(t *testing.T) {
	// A run of owned appends matches element-wise Append exactly.
	var owned, plain Vector[int]
	for i := 0; i < 100; i++ {
		owned = owned.AppendOwned(i)
		plain = plain.Append(i)
	}
	if !reflect.DeepEqual(owned.Slice(), plain.Slice()) {
		t.Fatalf("AppendOwned diverged from Append")
	}

	// Sealing freezes the shared snapshot: appending to both the sealed
	// vector and its copy must not let either write overwrite the other.
	base := owned.Sealed()
	copy1 := base.AppendOwned(-1)
	copy2 := base.AppendOwned(-2)
	if copy1.Get(100) != -1 || copy2.Get(100) != -2 {
		t.Fatalf("sealed tails aliased: %d %d", copy1.Get(100), copy2.Get(100))
	}
	if base.Len() != 100 {
		t.Fatalf("seal mutated the base")
	}

	// Pop must clip capacity so the dropped slot cannot be overwritten in
	// place while the pre-pop vector still exposes it.
	popped := base.Pop()
	appended := popped.AppendOwned(-3)
	if got := base.Get(99); got != 99 {
		t.Fatalf("AppendOwned after Pop overwrote shared slot: %d", got)
	}
	if appended.Get(99) != -3 {
		t.Fatalf("append after pop wrong: %d", appended.Get(99))
	}
}

// TestSetOwnedSharing exercises the SetOwned/MarkShared contract: in-place
// overwrites are permitted only while no sealed view shares the tail, and
// marking re-establishes copy-on-set exactly once.
func TestSetOwnedSharing(t *testing.T) {
	var v Vector[int]
	for i := 0; i < 40; i++ {
		v = v.AppendOwned(i)
	}
	// Owned overwrites agree with Set everywhere, including trie indexes.
	// w is an independent rebuild, not a value copy: SetOwned's contract
	// gives it leave to release (zero) a backing no marked view shares, so
	// an unmarked alias of v would observe the reclaim.
	w := FromSlice(v.Slice())
	for i := 0; i < 40; i += 3 {
		v = v.SetOwned(i, 1000+i)
		w = w.Set(i, 1000+i)
	}
	if !reflect.DeepEqual(v.Slice(), w.Slice()) {
		t.Fatalf("SetOwned diverged from Set: %v vs %v", v.Slice(), w.Slice())
	}

	// Hand out a sealed view, then overwrite a tail slot in owned mode: the
	// sealed view must keep the old value.
	v.MarkShared()
	view := v.Sealed()
	before := view.Get(39)
	v2 := v.SetOwned(39, -1)
	if got := view.Get(39); got != before {
		t.Fatalf("SetOwned wrote through a sealed view: %d", got)
	}
	if v2.Get(39) != -1 {
		t.Fatalf("SetOwned lost the write: %d", v2.Get(39))
	}
	// After the copy-on-set, further owned overwrites are invisible to the
	// view as well (fresh backing).
	v3 := v2.SetOwned(38, -2)
	if got := view.Get(38); got != 38 {
		t.Fatalf("second SetOwned wrote through a sealed view: %d", got)
	}
	if v3.Get(38) != -2 || v3.Get(39) != -1 {
		t.Fatalf("owned overwrites lost: %v", v3.Slice()[36:])
	}

	// The parent's in-place append run survives sharing: beyond-length
	// writes are invisible to length-clipped views.
	v4 := v3.AppendOwned(77)
	if view.Len() != 40 || v4.Get(40) != 77 {
		t.Fatalf("append after sharing broke: viewLen=%d", view.Len())
	}
}

package cow

import (
	"reflect"
	"testing"
)

// TestSealedOverwriteReclaims is the regression test for the seal/overwrite
// chunk leak: a tail sealed by its owner and then overwritten by SetOwned
// before any reader attaches must release the stranded chunk. Accounting
// proves it — a thousand seal+overwrite cycles may not let live chunks
// grow.
func TestSealedOverwriteReclaims(t *testing.T) {
	vals := make([]int, 40)
	for i := range vals {
		vals[i] = i
	}
	v := FromSlice(vals)
	a0, r0 := ChunkAccounting()
	for i := 0; i < 1000; i++ {
		v.SealTail()          // owner seals; no reader ever attaches
		v = v.SetOwned(39, i) // overwrite must reclaim the sealed chunk
	}
	a1, r1 := ChunkAccounting()
	allocs, reclaims := a1-a0, r1-r0
	if allocs < 1000 {
		t.Fatalf("expected ~1000 chunk allocs, accounting saw %d", allocs)
	}
	if live := allocs - reclaims; live > 2 {
		t.Fatalf("seal+overwrite leaked %d chunks over 1000 cycles (allocs %d, reclaims %d)", live, allocs, reclaims)
	}
	if v.Get(39) != 999 || v.Get(0) != 0 {
		t.Fatalf("reclaim corrupted contents: %v", v.Slice()[36:])
	}
}

// TestReclaimSparesSharedChunks: once a view is handed out (MarkShared +
// Sealed), owned mutators must copy without releasing — the release would
// zero the view's elements out from under it.
func TestReclaimSparesSharedChunks(t *testing.T) {
	vals := make([]int, 40)
	for i := range vals {
		vals[i] = i
	}
	v := FromSlice(vals)
	v.MarkShared()
	view := v.Sealed()
	_, r0 := ChunkAccounting()
	v2 := v.SetOwned(39, -1)
	_, r1 := ChunkAccounting()
	if r1 != r0 {
		t.Fatalf("SetOwned released a chunk a view shares (%d reclaims)", r1-r0)
	}
	if got := view.Get(39); got != 39 {
		t.Fatalf("view corrupted after owned overwrite: %d", got)
	}
	if v2.Get(39) != -1 {
		t.Fatalf("owned overwrite lost: %d", v2.Get(39))
	}

	// Pop propagates the shared mark: a later owned mutator on the popped
	// vector still may not release the backing the view reads.
	p := v.Pop()
	p2 := p.SetOwned(38, -2)
	if got := view.Get(38); got != 38 {
		t.Fatalf("view corrupted after pop+overwrite: %d", got)
	}
	if p2.Get(38) != -2 {
		t.Fatalf("pop+overwrite lost: %d", p2.Get(38))
	}
}

// TestReleaseOwnedAndReplace: the façade rebuild idiom reclaims the old
// vector's chunk exactly when it is unshared.
func TestReleaseOwnedAndReplace(t *testing.T) {
	v := FromSlice([]int{1, 2, 3})
	_, r0 := ChunkAccounting()
	Replace(&v, FromSlice([]int{4, 5, 6}))
	_, r1 := ChunkAccounting()
	if r1-r0 != 1 {
		t.Fatalf("Replace reclaimed %d chunks, want 1", r1-r0)
	}
	if !reflect.DeepEqual(v.Slice(), []int{4, 5, 6}) {
		t.Fatalf("Replace lost contents: %v", v.Slice())
	}

	// Shared old vector: Replace must leave the chunk alone.
	v.MarkShared()
	view := v.Sealed()
	_, r2 := ChunkAccounting()
	Replace(&v, FromSlice([]int{7}))
	_, r3 := ChunkAccounting()
	if r3 != r2 {
		t.Fatalf("Replace released a shared chunk (%d reclaims)", r3-r2)
	}
	if !reflect.DeepEqual(view.Slice(), []int{4, 5, 6}) {
		t.Fatalf("view corrupted by Replace: %v", view.Slice())
	}
}

// TestCompact: the reclaim pass preserves contents, drops the receiver's
// owned chunk, and produces an exact-capacity tail — including after Pops
// that left a stale rightmost trie path behind.
func TestCompact(t *testing.T) {
	var v Vector[int]
	for i := 0; i < 100; i++ {
		v = v.AppendOwned(i)
	}
	for i := 0; i < 40; i++ {
		v = v.Pop() // crosses leaf boundaries, leaving stale paths
	}
	want := v.Slice()
	_, r0 := ChunkAccounting()
	c := v.Compact()
	_, r1 := ChunkAccounting()
	if r1-r0 < 1 {
		t.Fatal("Compact reclaimed nothing")
	}
	if !reflect.DeepEqual(c.Slice(), want) {
		t.Fatalf("Compact changed contents: %v vs %v", c.Slice(), want)
	}
	if c.Len() != 60 {
		t.Fatalf("Compact length %d, want 60", c.Len())
	}
	// The compacted vector keeps working as an owned structure.
	c = c.AppendOwned(1000)
	if c.Get(60) != 1000 {
		t.Fatalf("append after Compact lost: %d", c.Get(60))
	}
}

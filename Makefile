# Standard entry points for the Spawn & Merge reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-gate figure3 figure3-full soak soak-trace soak-kill soak-collab soak-mem soak-shard explore explore-deep churn compact fuzz fuzz-ot fuzz-batch fuzz-segment examples

# race is part of all so the fault-injection suite always runs under the
# race detector.
all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Quick trajectory with the allocation gates: fails if a spawn-merge
# roundtrip or a shard routing lookup allocates more than the committed
# budgets (see cmd/bench).
bench-gate:
	$(GO) run ./cmd/bench -quick -gate -out BENCH_PR10.quick.json

# Regenerates Figure 3 and the Section III analysis (scaled-down sweep).
figure3:
	$(GO) run ./cmd/figure3 -repeats 3

# The paper's full l <= 10000 sweep (takes on the order of an hour).
figure3-full:
	$(GO) run ./cmd/figure3 -full -repeats 3

soak:
	$(GO) run ./cmd/soak -duration 60s

# Crash-recovery soak: SIGKILL + resume journaled worker processes in a
# loop, verifying every recovered fingerprint.
soak-kill:
	$(GO) run ./cmd/soak -kill -duration 30s

# Span-tree determinism soak: traced random probes must produce
# bit-identical span trees and counter sets across GOMAXPROCS 1/4.
soak-trace:
	$(GO) run ./cmd/soak -trace -duration 30s

# Collab front-door soak: seeded chaos rounds (drops, resets, dial
# failures, partition pulses) must complete the full multi-client edit
# workload via reconnect+RESUME and converge on the fault-free canonical
# fingerprint; a final overload round must shed visibly without losing
# or duplicating an acked edit.
soak-collab:
	$(GO) run ./cmd/soak -collab -duration 30s

# Bounded-memory soak: compressed long-lived rounds where the bounded run
# (history GC + WAL rotation + checkpoint pruning) must hold retained
# history, journal disk and post-GC heap flat while staying bit-identical
# to an unbounded reference run and to a full journal replay.
soak-mem:
	$(GO) run ./cmd/soak -mem -duration 30s

# Sharded-service smoke (<15s of runtime): one trimmed pass of the full
# battery — 1/2/4-shard clean runs over memnet, a seeded-chaos round on
# the inter-shard fabric, and a SIGKILL+resume of one journaled shard —
# each verified against the single-process reference fingerprints. The
# nightly job runs the full 100k-op pass.
soak-shard:
	$(GO) run ./cmd/soak -shard -shard-ops 4000 -duration 1ms

# Bounded schedule exploration: exhaustively enumerate the MergeAny
# fixtures, then random-walk the deterministic and chaos fixtures. The
# whole pass fits in a CI smoke budget (well under 60s).
explore:
	$(GO) run ./cmd/explore -scenario anyorder -strategy exhaustive
	$(GO) run ./cmd/explore -scenario overlapany -strategy exhaustive
	$(GO) run ./cmd/explore -scenario abortsync -strategy exhaustive -procs 1,4
	$(GO) run ./cmd/explore -scenario fanout -schedules 32 -procs 1,4
	$(GO) run ./cmd/explore -scenario chaos -schedules 16
	$(GO) run ./cmd/explore -scenario session -strategy exhaustive -schedules 128
	$(GO) run ./cmd/explore -scenario compact -strategy exhaustive -schedules 2048
	$(GO) run ./cmd/explore -scenario shard -strategy exhaustive -schedules 64

# Deep exploration for the nightly job: big random-walk budgets, a
# GOMAXPROCS sweep, crash-point sweeps on the journaled fixture, and
# failing seeds persisted under explore-seeds/ for artifact upload.
explore-deep:
	mkdir -p explore-seeds
	$(GO) run ./cmd/explore -scenario fanout -schedules 512 -procs 1,2,4,8 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario anyorder -schedules 256 -procs 1,4 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario abortsync -schedules 256 -procs 1,4 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario fanout -schedules 16 -crash -crash-points 5 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario chaos -schedules 128 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario churn -strategy exhaustive -schedules 4000 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario churn -schedules 16 -crash -crash-points 3 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario session -strategy exhaustive -schedules 128 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario compact -strategy exhaustive -schedules 2048 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario compact -schedules 8 -crash -crash-points 5 -segment-bytes 256 -retain-ckpts 1 -seeds explore-seeds
	$(GO) run ./cmd/explore -scenario shard -strategy exhaustive -schedules 64 -seeds explore-seeds
	$(GO) run ./cmd/soak -churn -duration 60s
	$(GO) run ./cmd/soak -shard -duration 1s
	$(GO) run ./cmd/soak -collab -duration 120s
	$(GO) run ./cmd/soak -explore -duration 120s
	$(GO) run ./cmd/soak -mem -duration 120s

# Elastic-cluster churn smoke (<10s of runtime): a bounded exhaustive
# enumeration of membership schedules (join/drain/leave/kill × explored
# placements) plus a burst of coordinator SIGKILL/resume churn with
# fingerprint verification.
churn:
	$(GO) run ./cmd/explore -scenario churn -strategy exhaustive -schedules 300
	$(GO) run ./cmd/soak -churn -duration 4s

# Compaction smoke (<15s of runtime): exhaustively enumerate the compact
# scenario's decision space (GC policy × abort × drain × MergeAny pick
# order must land on one fingerprint), crash-sweep it with forced WAL
# rotation + checkpoint pruning, and run a short bounded-memory soak.
compact:
	$(GO) run ./cmd/explore -scenario compact -strategy exhaustive -schedules 2048
	$(GO) run ./cmd/explore -scenario compact -schedules 4 -crash -segment-bytes 256 -retain-ckpts 1
	$(GO) run ./cmd/soak -mem -duration 8s

# Journal recovery fuzzing (arbitrary WAL bytes must never panic and
# must classify as corrupt / torn-tail / no-run).
fuzz:
	$(GO) test ./internal/journal -run '^$$' -fuzz FuzzJournalRecover -fuzztime 30s -fuzzminimizetime 10x

# OT invariant fuzzing: machine-generated concurrent histories must
# satisfy TP1, transform-path agreement and compaction soundness.
fuzz-ot:
	$(GO) test ./internal/ot -run '^$$' -fuzz FuzzListTransform -fuzztime 30s -fuzzminimizetime 10x

# Differential fuzzing of the batched run-length transform engine: it
# must produce op sequences identical to the pairwise shape engine.
fuzz-batch:
	$(GO) test ./internal/ot -run '^$$' -fuzz FuzzBatchedTransform -fuzztime 30s -fuzzminimizetime 10x

# Segmented-WAL recovery fuzzing: arbitrary bytes as a rotated segment
# (with and without a stale base wal.log underneath) must recover to a
# classified outcome, never resurrect truncated history, and survive
# re-open after recovery.
fuzz-segment:
	$(GO) test ./internal/journal -run '^$$' -fuzz FuzzSegmentRecover -fuzztime 30s -fuzzminimizetime 10x

examples:
	for ex in quickstart server simulation collabtext semaphore distributed bank pipeline stencil; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

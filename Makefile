# Standard entry points for the Spawn & Merge reproduction.

GO ?= go

.PHONY: all build vet test race bench figure3 figure3-full soak soak-trace soak-kill fuzz fuzz-ot examples

# race is part of all so the fault-injection suite always runs under the
# race detector.
all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerates Figure 3 and the Section III analysis (scaled-down sweep).
figure3:
	$(GO) run ./cmd/figure3 -repeats 3

# The paper's full l <= 10000 sweep (takes on the order of an hour).
figure3-full:
	$(GO) run ./cmd/figure3 -full -repeats 3

soak:
	$(GO) run ./cmd/soak -duration 60s

# Crash-recovery soak: SIGKILL + resume journaled worker processes in a
# loop, verifying every recovered fingerprint.
soak-kill:
	$(GO) run ./cmd/soak -kill -duration 30s

# Span-tree determinism soak: traced random probes must produce
# bit-identical span trees and counter sets across GOMAXPROCS 1/4.
soak-trace:
	$(GO) run ./cmd/soak -trace -duration 30s

# Journal recovery fuzzing (arbitrary WAL bytes must never panic and
# must classify as corrupt / torn-tail / no-run).
fuzz:
	$(GO) test ./internal/journal -run '^$$' -fuzz FuzzJournalRecover -fuzztime 30s -fuzzminimizetime 10x

# OT invariant fuzzing: machine-generated concurrent histories must
# satisfy TP1, transform-path agreement and compaction soundness.
fuzz-ot:
	$(GO) test ./internal/ot -run '^$$' -fuzz FuzzListTransform -fuzztime 30s -fuzzminimizetime 10x

examples:
	for ex in quickstart server simulation collabtext semaphore distributed bank pipeline stencil; do \
		echo "=== $$ex ==="; $(GO) run ./examples/$$ex || exit 1; \
	done

package repro

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/journal"
)

func init() {
	dist.RegisterListCodec[string]("facade-journal-list-string")
}

// journalWorkload appends three child words via MergeAny — enough
// non-determinism to give the journal picks to record.
func journalWorkload(ctx *Ctx, data []Mergeable) error {
	for _, w := range []string{"crash", "consistent", "journal"} {
		w := w
		ctx.Spawn(func(_ *Ctx, d []Mergeable) error {
			d[0].(*List[string]).Append(w)
			return nil
		}, data[0])
	}
	for i := 0; i < 3; i++ {
		if _, err := ctx.MergeAny(); err != nil {
			return err
		}
	}
	return nil
}

// TestRunJournaledAndResume exercises the public crash-recovery API end
// to end: a journaled run completes, and Resume over the sealed journal
// reproduces the exact final structures.
func TestRunJournaledAndResume(t *testing.T) {
	dir := t.TempDir()
	list := NewList[string]()
	if err := RunJournaled(dir, journalWorkload, list); err != nil {
		t.Fatal(err)
	}
	if list.Len() != 3 {
		t.Fatalf("journaled run produced %d words, want 3", list.Len())
	}

	out, err := Resume(dir, journalWorkload)
	if err != nil {
		t.Fatal(err)
	}
	got := out[0].(*List[string]).Values()
	want := list.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed list %v, want %v", got, want)
		}
	}

	// A second journaled run over the same directory must refuse.
	if err := RunJournaled(dir, journalWorkload, NewList[string]()); err == nil {
		t.Fatal("RunJournaled over an existing journal succeeded")
	}
	// Resuming an empty directory reports ErrNoJournaledRun.
	if _, err := Resume(t.TempDir(), journalWorkload); !errors.Is(err, ErrNoJournaledRun) {
		t.Fatalf("Resume(empty) = %v, want ErrNoJournaledRun", err)
	}
}

// TestJournalSentinelsAlias pins the facade re-exports to the internal
// sentinels so errors.Is works across the boundary.
func TestJournalSentinelsAlias(t *testing.T) {
	if !errors.Is(journal.ErrCorrupt, ErrJournalCorrupt) ||
		!errors.Is(journal.ErrTornTail, ErrJournalTornTail) ||
		!errors.Is(journal.ErrNoRun, ErrNoJournaledRun) ||
		!errors.Is(journal.ErrDiverged, ErrJournalDiverged) {
		t.Fatal("facade journal sentinels do not alias the internal ones")
	}
}

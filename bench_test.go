// Benchmarks regenerating the paper's evaluation (one benchmark family
// per figure/claim) plus microbenchmarks for the framework's moving parts.
//
// BenchmarkFigure3 measures the four simulation engines across host
// workloads — the series of Figure 3. The simulation is run at a quarter
// of the paper's TTL so `go test -bench=.` stays tractable; cmd/figure3
// runs the full-scale sweep and the Section III analysis.
package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cow"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/mergeable"
	"repro/internal/netsim"
	"repro/internal/ot"
	"repro/internal/task"
)

// benchConfig is the paper's topology (20 hosts, 100 messages) at a
// quarter of the TTL.
func benchConfig(workload int) netsim.Config {
	return netsim.Config{Hosts: 20, Messages: 100, TTL: 25, Workload: workload, Seed: 1}
}

// BenchmarkFigure3 regenerates the Figure 3 series: simulation time per
// engine and host workload.
func BenchmarkFigure3(b *testing.B) {
	for _, l := range []int{0, 500, 1000} {
		for _, name := range bench.EngineOrder {
			b.Run(fmt.Sprintf("%s/l=%d", name, l), func(b *testing.B) {
				cfg := benchConfig(l)
				for i := 0; i < b.N; i++ {
					r, err := netsim.RunEngine(name, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if r.Hops != cfg.TotalHops() {
						b.Fatalf("hops = %d", r.Hops)
					}
				}
			})
		}
	}
}

// BenchmarkSpawnCopyOverhead isolates the paper's "constant overhead of
// about 400 milliseconds per run ... because on Spawn the initial data
// structures have to be copied for every spawned task (i.e. 20 tasks with
// 20 queues each)": it spawns 20 no-op tasks over 20 populated queues and
// merges them.
func BenchmarkSpawnCopyOverhead(b *testing.B) {
	const hosts = 20
	for i := 0; i < b.N; i++ {
		data := make([]Mergeable, hosts)
		for j := range data {
			q := NewQueue[int]()
			for k := 0; k < 5; k++ {
				q.Push(k)
			}
			data[j] = q
		}
		err := Run(func(ctx *Ctx, d []Mergeable) error {
			for t := 0; t < hosts; t++ {
				ctx.Spawn(func(ctx *Ctx, d []Mergeable) error { return nil }, d...)
			}
			return ctx.MergeAll()
		}, data...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// mergeManyStructsBody is one merge-scaling workload: a parent and one
// child mutate `structs` lists with `ops` Sets each, then merge. The child
// contributes on every structure, so the merge pays the full
// compact/transform cost per position — the work the parallel engine fans
// out.
func mergeManyStructsBody(b *testing.B, structs, ops int) {
	for i := 0; i < b.N; i++ {
		data := make([]mergeable.Mergeable, structs)
		for j := range data {
			l := mergeable.NewList[int]()
			for k := 0; k < 8; k++ {
				l.Append(k)
			}
			data[j] = l
		}
		err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			ch := ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				for _, m := range d {
					l := m.(*mergeable.List[int])
					for k := 0; k < ops; k++ {
						l.Set(k%8, k)
					}
				}
				return nil
			}, d...)
			for _, m := range d {
				l := m.(*mergeable.List[int])
				for k := 0; k < ops; k++ {
					l.Set((k+3)%8, -k)
				}
			}
			return ctx.MergeAllFromSet([]*task.Task{ch})
		}, data...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeManyStructs is the merge-scaling family: 1/8/64 structures
// × 10/100 concurrent operations each, under the serial and the parallel
// merge engine. On a single-core machine the parallel engine falls back to
// the inline serial path, so the two series there also document that the
// gate costs nothing when it cannot win.
func BenchmarkMergeManyStructs(b *testing.B) {
	defer task.SetParallelMerge(true)
	for _, engine := range []string{"serial", "parallel"} {
		for _, structs := range []int{1, 8, 64} {
			for _, ops := range []int{10, 100} {
				name := fmt.Sprintf("%s/structs=%d/ops=%d", engine, structs, ops)
				b.Run(name, func(b *testing.B) {
					task.SetParallelMerge(engine == "parallel")
					mergeManyStructsBody(b, structs, ops)
				})
			}
		}
	}
}

// BenchmarkCloneDeepVsCOW is the ablation for the paper's announced
// copy-on-write optimization: cloning task data as a deep-copied slice
// (what Spawn does today) versus an O(1) persistent-vector clone.
func BenchmarkCloneDeepVsCOW(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("deep-copy/n=%d", n), func(b *testing.B) {
			src := make([]int, n)
			for i := range src {
				src[i] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := append([]int(nil), src...)
				cp[0] = i // one write after the copy
				sink = cp[0]
			}
		})
		b.Run(fmt.Sprintf("cow/n=%d", n), func(b *testing.B) {
			src := cow.New[int]()
			for i := 0; i < n; i++ {
				src = src.Append(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := src // O(1) structural share
				cp = cp.Set(0, i)
				sink = cp.Get(0)
			}
		})
	}
}

var sink int

// BenchmarkOTTransform measures the transformation control algorithm —
// the per-merge cost of serializing two concurrent operation sequences.
func BenchmarkOTTransform(b *testing.B) {
	for _, n := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			client := make([]ot.Op, n)
			server := make([]ot.Op, n)
			for i := 0; i < n; i++ {
				client[i] = ot.SeqInsert{Pos: i, Elems: []any{i}}
				server[i] = ot.SeqDelete{Pos: 0, N: 1}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ot.TransformAgainst(client, server)
			}
		})
	}
}

// BenchmarkBatchedTransform measures the batched run-length engine on
// run-heavy histories — a 512-op client append run against a 256-op
// server append run followed by a 128-op pop run — with the pairwise
// shape engine as the ablation. Both engines produce identical op
// sequences (FuzzBatchedTransform pins that); the gap is the payoff of
// walking the transform grid at run granularity. Mirrored verbatim as
// cmd/bench's batched_transform / batched_transform_pairwise families.
func BenchmarkBatchedTransform(b *testing.B) {
	histories := func() (client, server []ot.Op) {
		client = make([]ot.Op, 512)
		for i := range client {
			client[i] = ot.SeqInsert{Pos: i, Elems: []any{i}}
		}
		server = make([]ot.Op, 0, 384)
		for i := 0; i < 256; i++ {
			server = append(server, ot.SeqInsert{Pos: i, Elems: []any{-i}})
		}
		for i := 0; i < 128; i++ {
			server = append(server, ot.SeqDelete{Pos: 0, N: 1})
		}
		return client, server
	}
	for _, batched := range []bool{true, false} {
		name := "batched"
		if !batched {
			name = "pairwise"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			client, server := histories()
			prev := ot.SetBatchedTransform(batched)
			defer ot.SetBatchedTransform(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ot.TransformAgainst(client, server)
			}
		})
	}
}

// BenchmarkCompaction measures the payoff of operation-log compaction:
// transforming a drained queue's operations (n pops) against a concurrent
// history, raw versus compacted. The transform is quadratic, so the
// compacted path collapses to a single-op transform.
func BenchmarkCompaction(b *testing.B) {
	for _, n := range []int{16, 128} {
		pops := make([]ot.Op, n)
		for i := range pops {
			pops[i] = ot.SeqDelete{Pos: 0, N: 1}
		}
		server := make([]ot.Op, n)
		for i := range server {
			server[i] = ot.SeqInsert{Pos: i, Elems: []any{i}}
		}
		b.Run(fmt.Sprintf("raw/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ot.TransformAgainst(pops, server)
			}
		})
		b.Run(fmt.Sprintf("compacted/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ot.TransformAgainst(ot.CompactSeq(pops), server)
			}
		})
	}
}

// BenchmarkSpawnMergeRoundtrip is the framework's minimal unit of work:
// spawn one child over one small list, child appends, merge.
func BenchmarkSpawnMergeRoundtrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := NewList(1, 2, 3)
		err := Run(func(ctx *Ctx, d []Mergeable) error {
			ctx.Spawn(func(ctx *Ctx, d []Mergeable) error {
				d[0].(*List[int]).Append(4)
				return nil
			}, d[0])
			return ctx.MergeAll()
		}, l)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// spawnMergeRoundtripBody is the minimal spawn/merge unit of work shared
// by the roundtrip benchmark and the tracing-overhead guards, run through
// an arbitrary runner so the same workload prices Run, RunWith and
// RunObserved against each other.
func spawnMergeRoundtripBody(b *testing.B, run func(fn Func, data ...Mergeable) error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := NewList(1, 2, 3)
		err := run(func(ctx *Ctx, d []Mergeable) error {
			ctx.Spawn(func(ctx *Ctx, d []Mergeable) error {
				d[0].(*List[int]).Append(4)
				return nil
			}, d[0])
			return ctx.MergeAll()
		}, l)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnMergeTraceOff runs the roundtrip workload through the
// observability-capable runner with tracing disabled. Its allocs/op must
// equal BenchmarkSpawnMergeRoundtrip's — the disabled tracer may cost
// nothing on the hot path. TestTraceOffAddsNoAllocations enforces that
// equality; this benchmark keeps the number visible in `go test -bench`
// output and in cmd/bench's trajectory JSON.
func BenchmarkSpawnMergeTraceOff(b *testing.B) {
	spawnMergeRoundtripBody(b, func(fn Func, data ...Mergeable) error {
		return RunWith(RunConfig{}, fn, data...)
	})
}

// BenchmarkSpawnMergeTraceOn prices the enabled tracer on the same
// workload, so the cost of turning observability on is a published number
// rather than folklore.
func BenchmarkSpawnMergeTraceOn(b *testing.B) {
	tr := NewTracer()
	spawnMergeRoundtripBody(b, func(fn Func, data ...Mergeable) error {
		return RunObserved(tr, fn, data...)
	})
}

// TestTraceOffAddsNoAllocations is the zero-overhead guard: the
// spawn/merge hot path with a nil tracer must allocate exactly as much as
// the plain runner — zero extra allocs/op.
func TestTraceOffAddsNoAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs unhurried runs")
	}
	measure := func(run func(fn Func, data ...Mergeable) error) int64 {
		return testing.Benchmark(func(b *testing.B) {
			spawnMergeRoundtripBody(b, run)
		}).AllocsPerOp()
	}
	plain := measure(Run)
	traceOff := measure(func(fn Func, data ...Mergeable) error {
		return RunWith(RunConfig{}, fn, data...)
	})
	if traceOff > plain {
		t.Fatalf("disabled tracing costs %d allocs/op over the plain runner's %d", traceOff-plain, plain)
	}
}

// BenchmarkSyncRoundtrip measures one Sync cycle — the per-simulation-
// round cost each host pays in Listing 4.
func BenchmarkSyncRoundtrip(b *testing.B) {
	c := mergeable.NewCounter(0)
	rounds := b.N
	err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
		h := ctx.Spawn(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			for {
				d[0].(*mergeable.Counter).Inc()
				if err := ctx.Sync(); err != nil {
					return nil
				}
			}
		}, d[0])
		b.ResetTimer()
		for i := 0; i < rounds; i++ {
			if err := ctx.MergeAll(); err != nil {
				return err
			}
		}
		b.StopTimer()
		h.Abort()
		return nil
	}, c)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMergeableQueue measures the structure operations the
// simulation leans on.
func BenchmarkMergeableQueue(b *testing.B) {
	b.Run("push-pop", func(b *testing.B) {
		q := NewQueue[int]()
		for i := 0; i < b.N; i++ {
			q.Push(i)
			if _, ok := q.PopFront(); !ok {
				b.Fatal("empty")
			}
			// Keep the op log from growing without bound.
			if i%1024 == 0 {
				q.Log().Commit(q.Log().TakeLocal())
				q.Log().Trim(q.Log().CommittedLen())
			}
		}
	})
	b.Run("clone/n=100", func(b *testing.B) {
		q := NewQueue[int]()
		for i := 0; i < 100; i++ {
			q.Push(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = q.CloneValue()
		}
	})
}

// BenchmarkScalingHosts probes the scalability question the paper's
// conclusion raises: Spawn & Merge simulation time as the host count
// grows with total work held constant. More hosts mean more parallelism
// per round but more copies per sync.
func BenchmarkScalingHosts(b *testing.B) {
	for _, hosts := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			cfg := netsim.Config{Hosts: hosts, Messages: 100, TTL: 25, Workload: 200, Seed: 1, Routing: netsim.RouteRing}
			for i := 0; i < b.N; i++ {
				if _, err := netsim.RunSpawnMerge(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCOWAblation measures the paper's announced copy-on-write
// optimization end to end: the same Spawn & Merge simulation with
// deep-copied structures versus structurally shared (FastQueue/FastList)
// ones. Results are bit-identical (enforced by netsim's tests); only the
// constant copying overhead changes.
func BenchmarkCOWAblation(b *testing.B) {
	for _, name := range []string{"spawnmerge-det", "spawnmerge-det-cow"} {
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(0) // l=0 isolates the copy overhead
			for i := 0; i < b.N; i++ {
				if _, err := netsim.RunEngine(name, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func init() {
	dist.RegisterListCodec[int]("bench-list-int")
	dist.RegisterFunc("bench-append", func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
		data[0].(*mergeable.List[int]).Append(1)
		return nil
	})
	dist.RegisterFunc("bench-sync", func(wctx *dist.WorkerCtx, data []mergeable.Mergeable) error {
		for i := 0; i < 8; i++ {
			data[0].(*mergeable.List[int]).Append(i)
			if err := wctx.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkRemoteSpawnRoundtrip prices the distributed extension's unit
// of work: serialize snapshots, ship to a worker node, run, ship the
// operations back, merge.
func BenchmarkRemoteSpawnRoundtrip(b *testing.B) {
	cluster := dist.NewCluster(1)
	defer cluster.Close()
	for i := 0; i < b.N; i++ {
		l := mergeable.NewList(1, 2, 3)
		err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			cluster.SpawnRemote(ctx, 0, "bench-append", d[0])
			return ctx.MergeAll()
		}, l)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteSyncRoundtrip prices one remote Sync cycle: ops over the
// wire, local merge, snapshot back, adopt.
func BenchmarkRemoteSyncRoundtrip(b *testing.B) {
	cluster := dist.NewCluster(1)
	defer cluster.Close()
	b.ReportMetric(8, "syncs/op")
	for i := 0; i < b.N; i++ {
		l := mergeable.NewList[int]()
		err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
			h := cluster.SpawnRemote(ctx, 0, "bench-sync", d[0])
			for s := 0; s < 9; s++ {
				if err := ctx.MergeAllFromSet([]*task.Task{h}); err != nil {
					return err
				}
			}
			return nil
		}, l)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteFanout prices scattering the same snapshot to every node
// of a cluster: per-node-encode serializes the structures once per
// SpawnRemote, encode-once serializes them once per fan-out and shares the
// bytes (SpawnRemoteMany). The list is large enough for the encode to be a
// visible share of the round trip.
func BenchmarkRemoteFanout(b *testing.B) {
	const nodes = 4
	vals := make([]int, 512)
	for i := range vals {
		vals[i] = i
	}
	cluster := dist.NewCluster(nodes)
	defer cluster.Close()
	b.Run("per-node-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := mergeable.NewList(vals...)
			err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				for n := 0; n < nodes; n++ {
					cluster.SpawnRemote(ctx, n, "bench-append", d[0])
				}
				return ctx.MergeAll()
			}, l)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := mergeable.NewList(vals...)
			err := task.Run(func(ctx *task.Ctx, d []mergeable.Mergeable) error {
				if _, err := cluster.SpawnRemoteMany(ctx, []int{0, 1, 2, 3}, "bench-append", d[0]); err != nil {
					return err
				}
				return ctx.MergeAll()
			}, l)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMapReduce measures the deterministic map/reduce framework on a
// synthetic word-count corpus.
func BenchmarkMapReduce(b *testing.B) {
	corpus := make([]string, 64)
	for i := range corpus {
		corpus[i] = fmt.Sprintf("line %d with some shared words and token%d", i, i%7)
	}
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := mapreduce.Run(corpus, func(line string, emit func(string, int)) {
				for _, w := range strings.Fields(line) {
					emit(w, 1)
				}
			}, func(a, b int) int { return a + b }, mapreduce.Options{MapShards: 8, ReduceShards: 4})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := map[string]int{}
			for _, line := range corpus {
				for _, w := range strings.Fields(line) {
					out[w]++
				}
			}
			if len(out) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkParallelBFS measures the level-synchronous BFS on a random
// graph across task counts.
func BenchmarkParallelBFS(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	const n = 2000
	g := graph.New(n)
	for e := 0; e < 4*n; e++ {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	for _, tasks := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.BFS(g, 0, tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetVsNondetGap reports the Section III observation that the
// deterministic Spawn & Merge simulation runs slightly faster than the
// hash-routing one (messages clustering on one host cost extra cycles).
func BenchmarkDetVsNondetGap(b *testing.B) {
	for _, name := range []string{"spawnmerge-nondet", "spawnmerge-det"} {
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(100)
			for i := 0; i < b.N; i++ {
				if _, err := netsim.RunEngine(name, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package repro

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/detcheck"
)

// TestQuickstartListing1 runs the README / paper Listing 1 scenario
// through the public facade.
func TestQuickstartListing1(t *testing.T) {
	list := NewList(1, 2, 3)
	err := Run(func(ctx *Ctx, data []Mergeable) error {
		l := data[0].(*List[int])
		h := ctx.Spawn(func(ctx *Ctx, data []Mergeable) error {
			data[0].(*List[int]).Append(5)
			return nil
		}, l)
		l.Append(4)
		return ctx.MergeAllFromSet([]*Task{h})
	}, list)
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Values(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("list = %v", got)
	}
}

// TestFacadeConstructors touches every constructor the facade re-exports.
func TestFacadeConstructors(t *testing.T) {
	if NewList(1).Len() != 1 {
		t.Error("NewList")
	}
	if NewQueue("x").Len() != 1 {
		t.Error("NewQueue")
	}
	m := NewMap[string, int]()
	m.Set("k", 1)
	if m.Len() != 1 {
		t.Error("NewMap")
	}
	if !NewSet(1, 2).Contains(2) {
		t.Error("NewSet")
	}
	if NewRegister(7).Get() != 7 {
		t.Error("NewRegister")
	}
	if NewCounter(3).Value() != 3 {
		t.Error("NewCounter")
	}
	if NewText("ab").Len() != 2 {
		t.Error("NewText")
	}
	tr := NewTree("root")
	if v, err := tr.Value(); err != nil || v != "root" {
		t.Error("NewTree")
	}
}

// TestFacadeErrorsExported checks the sentinel errors flow through the
// facade unchanged.
func TestFacadeErrorsExported(t *testing.T) {
	err := Run(func(ctx *Ctx, data []Mergeable) error {
		if _, e := ctx.MergeAny(); !errors.Is(e, ErrNothingToMerge) {
			t.Errorf("MergeAny = %v", e)
		}
		if e := ctx.Sync(); !errors.Is(e, ErrRootSync) {
			t.Errorf("Sync = %v", e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var pe PanicError
	err = Run(func(ctx *Ctx, data []Mergeable) error {
		h := ctx.Spawn(func(ctx *Ctx, data []Mergeable) error { panic("x") })
		mergeErr := ctx.MergeAll()
		if !errors.As(mergeErr, &pe) {
			t.Errorf("MergeAll = %v", mergeErr)
		}
		_ = h
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadeCondition exercises WithCondition through the facade.
func TestFacadeCondition(t *testing.T) {
	c := NewCounter(0)
	err := Run(func(ctx *Ctx, data []Mergeable) error {
		ctx.Spawn(func(ctx *Ctx, data []Mergeable) error {
			data[0].(*Counter).Add(100)
			return nil
		}, data[0])
		err := ctx.MergeAll(WithCondition(func(preview []Mergeable) bool {
			return preview[0].(*Counter).Value() <= 10
		}))
		if !errors.Is(err, ErrMergeRejected) {
			t.Errorf("MergeAll = %v", err)
		}
		return nil
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 {
		t.Fatalf("rejected merge leaked: %d", c.Value())
	}
}

// TestWordCountPipeline is an end-to-end "map-reduce" use of the public
// API: children count words of document shards into a shared mergeable
// map; increments to the same key conflict, so shards pre-aggregate and
// publish to distinct keys, and the parent folds — all deterministic.
func TestWordCountPipeline(t *testing.T) {
	shards := []string{
		"the quick brown fox",
		"jumps over the lazy dog",
		"the dog barks",
	}
	counts := NewMap[string, int]()
	err := Run(func(ctx *Ctx, data []Mergeable) error {
		m := data[0].(*Map[string, int])
		for i, shard := range shards {
			i, shard := i, shard
			ctx.Spawn(func(ctx *Ctx, data []Mergeable) error {
				local := map[string]int{}
				for _, w := range strings.Fields(shard) {
					local[w]++
				}
				out := data[0].(*Map[string, int])
				for w, n := range local {
					out.Set(fmt.Sprintf("shard%d/%s", i, w), n)
				}
				return nil
			}, m)
		}
		if err := ctx.MergeAll(); err != nil {
			return err
		}
		// Fold shard results into final counts.
		total := map[string]int{}
		for _, k := range m.Keys() {
			v, _ := m.Get(k)
			total[k[strings.Index(k, "/")+1:]] += v
		}
		for w, n := range total {
			m.Set("total/"+w, n)
		}
		return nil
	}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := counts.Get("total/the"); v != 3 {
		t.Fatalf("the = %d, want 3", v)
	}
	if v, _ := counts.Get("total/dog"); v != 2 {
		t.Fatalf("dog = %d, want 2", v)
	}
}

// TestFacadeDeterminism runs a facade-level scenario through the
// determinism checker across GOMAXPROCS values.
func TestFacadeDeterminism(t *testing.T) {
	scenario := func() (uint64, error) {
		txt := NewText("x")
		lst := NewList[int]()
		err := Run(func(ctx *Ctx, data []Mergeable) error {
			for i := 0; i < 4; i++ {
				i := i
				ctx.Spawn(func(ctx *Ctx, data []Mergeable) error {
					data[0].(*Text).Insert(0, fmt.Sprint(i))
					data[1].(*List[int]).Insert(0, i)
					return nil
				}, data[0], data[1])
			}
			return ctx.MergeAll()
		}, txt, lst)
		if err != nil {
			return 0, err
		}
		return txt.Fingerprint() ^ lst.Fingerprint(), nil
	}
	rep, err := detcheck.CheckAcrossProcs(8, []int{1, 2, 4}, scenario)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Fatalf("facade scenario non-deterministic: %s", rep)
	}
}

package repro_test

import (
	"fmt"

	"repro"
)

// The paper's Listing 1: a spawned child and its parent append to the
// same logical list without locks; the deterministic merge interleaves
// the operations identically on every run.
func ExampleRun() {
	list := repro.NewList(1, 2, 3)
	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		l := data[0].(*repro.List[int])
		t := ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
			data[0].(*repro.List[int]).Append(5)
			return nil
		}, l)
		l.Append(4)
		return ctx.MergeAllFromSet([]*repro.Task{t})
	}, list)
	if err != nil {
		panic(err)
	}
	fmt.Println(list.Values())
	// Output: [1 2 3 4 5]
}

// Sync lets a long-running child merge intermediate results with its
// parent and continue on a fresh copy (Section II.E of the paper).
func ExampleCtx_Sync() {
	counter := repro.NewCounter(0)
	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		h := ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
			c := data[0].(*repro.Counter)
			for i := 0; i < 3; i++ {
				c.Inc()
				if err := ctx.Sync(); err != nil { // merge and continue
					return err
				}
			}
			return nil
		}, data[0])
		for i := 0; i < 4; i++ {
			if err := ctx.MergeAllFromSet([]*repro.Task{h}); err != nil {
				return err
			}
		}
		return nil
	}, counter)
	if err != nil {
		panic(err)
	}
	fmt.Println(counter.Value())
	// Output: 3
}

// Condition functions validate post-conditions before a merge is
// accepted; a rejected merge discards the child's changes — the paper's
// rollback that never happens because of conflicts, only because the
// application said no.
func ExampleWithCondition() {
	balance := repro.NewCounter(100)
	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
			data[0].(*repro.Counter).Add(-150) // would overdraw
			return nil
		}, data[0])
		noOverdraft := repro.WithCondition(func(preview []repro.Mergeable) bool {
			return preview[0].(*repro.Counter).Value() >= 0
		})
		_ = ctx.MergeAll(noOverdraft) // the rejection is reported here
		return nil
	}, balance)
	if err != nil {
		panic(err)
	}
	fmt.Println(balance.Value())
	// Output: 100
}

// Concurrent edits to one text buffer converge through operational
// transformation — the technique's original habitat.
func ExampleText() {
	doc := repro.NewText("Hello world")
	err := repro.Run(func(ctx *repro.Ctx, data []repro.Mergeable) error {
		d := data[0].(*repro.Text)
		ctx.Spawn(func(ctx *repro.Ctx, data []repro.Mergeable) error {
			data[0].(*repro.Text).Append("!") // one editor appends
			return nil
		}, d)
		d.Insert(5, ",") // the other edits the middle concurrently
		return ctx.MergeAll()
	}, doc)
	if err != nil {
		panic(err)
	}
	fmt.Println(doc.String())
	// Output: Hello, world!
}
